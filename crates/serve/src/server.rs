//! The serving front-end: tenants, admission, weighted dispatch,
//! shedding, and teardown.
//!
//! # Architecture
//!
//! ```text
//! client threads                dispatcher thread            pool workers
//! ──────────────                ─────────────────            ────────────
//! TenantHandle::submit ──► AdmissionQueue (bounded, per ──► Wdrr::round ──►
//!   │ QueueFull/TenantClosed     tenant; typed backpressure)   │
//!   ▼                                                          ▼
//! ResponseHandle                 shed overload /        Pool::spawn_with
//!   wait / cancel                drain closed tenants    (token + tag +
//!                                                         home domain)
//! ```
//!
//! Each tenant owns a long-lived subtree of the machine: a home
//! locality domain its requests are homed to (`SpawnOpts::domain`), a
//! [`htvm_core::PoolTag`] slicing the pool's counters per tenant, and
//! a weight feeding the [`Wdrr`] dispatcher. A single
//! dispatcher thread moves requests from admission queues into the
//! pool's injectors; the pool itself stays a pure work-stealing
//! substrate — the serving policy (fairness, shedding, cancellation)
//! lives entirely above it.
//!
//! # Exactly-once resolution
//!
//! Every admitted request resolves exactly once, through the
//! request's **settle gate** (`ReqState::settle`, a single CAS that
//! elects the one resolver) layered over the per-attempt
//! [`CancelToken`] state machine (see `htvm_core::cancel`):
//!
//! * **Completed/Failed** — each dispatched attempt runs under its own
//!   *attempt token* (a `child()` of the request's root token) with the
//!   body wrapped in `catch_unwind`: a normal return settles
//!   `Completed`; a panic is classified into a typed [`RequestFault`]
//!   (injected fault site / kernel trap / plain panic) and — once the
//!   tenant's [`RetryPolicy`] is exhausted — settles `Failed`. The
//!   unwind is re-raised so the pool's containment and kill-propagation
//!   accounting stay intact.
//! * **Cancelled** — the hook armed on the root token at admission
//!   settles from whichever thread wins the root CAS; an attempt
//!   dropped unrun at the pool's grain boundary (the *attempt* token
//!   observed the root's cancel or deadline through the parent chain)
//!   settles from the finish guard's drop path instead.
//! * **Rejected** — the dispatcher claims the root token before
//!   shedding (overload, tenant close, shutdown): if the claim loses, a
//!   concurrent cancel already resolved the request and the shed
//!   becomes a no-op.
//! * **Retried** — a failed or shed attempt whose tenant policy still
//!   allows it settles *nothing*: the request parks in the tenant's
//!   retry backlog until its backoff elapses, then re-dispatches as
//!   attempt *n+1* with a fresh attempt token. Only the final attempt
//!   settles, so the ledger still conserves.
//!
//! In-flight accounting never depends on who wins: the drop guard that
//! decrements `in_flight` travels *inside* the job closure, so it runs
//! on a worker whether the body executes, panics, or is dropped unrun —
//! and its drop path also settles the request if the attempt died
//! without reporting (e.g. an injected thread kill), so no client ever
//! hangs on `wait()`.
//!
//! # Supervision
//!
//! The dispatcher thread is itself a failure domain. Its loop runs
//! under a `catch_unwind` restart harness: a plain panic restarts the
//! dispatch loop in place; an injected *kill* lets the thread die and a
//! drop-guard (`DispatcherWatch`) respawns a successor thread —
//! admitted requests are untouched either way because the fault point
//! (`serve.dispatch`) sits *before* any request is popped. `shutdown`
//! joins the whole chain of successors. The [`Autopilot`] controller
//! thread has the same restart harness (see `autopilot.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use htvm_core::{
    AdmissionQueue, AdmitError, CancelToken, DomainId, Htvm, Pool, PoolTag, SpawnOpts, TagStats,
    WorkerCtx,
};
use litlx::{NativeParcel, ReplayAction};
use parking_lot::{Condvar, Mutex};

use crate::autopilot::{Autopilot, AutopilotConfig, Bubble, BubbleTenant};
use crate::drr::Wdrr;
use crate::request::{Outcome, RejectReason, ReqState, RequestFault, ResponseHandle, SubmitError};
use crate::retry::RetryPolicy;

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Deficit credit per unit weight per dispatch round.
    pub quantum: u64,
    /// Maximum requests dispatched into the pool but not yet finished;
    /// the dispatcher stalls (not the clients) when reached.
    pub max_in_flight: usize,
    /// Admission-queue capacity for tenants that don't override it.
    pub default_queue_capacity: usize,
    /// Shed watermark: when total queued requests across tenants
    /// exceed this, the dispatcher sheds newest-first from the
    /// lowest-weight backlogged tenant until back under.
    pub max_queued_total: usize,
    /// How long the dispatcher sleeps when there is nothing to do
    /// (submissions and completions also wake it explicitly).
    pub idle_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            quantum: 4,
            max_in_flight: 64,
            default_queue_capacity: 64,
            max_queued_total: 1024,
            idle_wait: Duration::from_micros(200),
        }
    }
}

/// Per-tenant registration knobs.
#[derive(Debug, Clone, Default)]
pub struct TenantConfig {
    /// Relative dispatch weight (clamped to ≥ 1).
    pub weight: u64,
    /// Admission-queue bound; defaults to
    /// [`ServerConfig::default_queue_capacity`].
    pub queue_capacity: Option<usize>,
    /// Initial home locality domain for the tenant's bubble; defaults
    /// to `tenant_id % num_domains` (round-robin placement). The pin is
    /// *initial* only: the tenant's [`Bubble`] can be re-pinned or
    /// burst at runtime (by the [`Autopilot`] or by hand).
    pub home: Option<DomainId>,
    /// Opt-in retry policy: failed attempts (and overload sheds) are
    /// re-admitted after a seeded exponential backoff instead of
    /// settling, within the policy's attempt/budget/deadline bounds.
    /// `None` (the default) settles every failure immediately.
    /// Execution retries additionally require a replayable parcel
    /// ([`NativeParcel::replayable`] / [`NativeParcel::fallible`]);
    /// one-shot bodies only get shed-before-run retries.
    pub retry: Option<RetryPolicy>,
}

impl TenantConfig {
    /// A tenant with the given weight and defaults otherwise.
    pub fn weighted(weight: u64) -> Self {
        Self {
            weight,
            ..Self::default()
        }
    }
}

/// Counters a tenant accumulates over its lifetime. Conservation: every
/// submission ends in exactly one bucket —
/// `submitted == rejected_full + completed + failed + cancelled +
/// shed + closed_rejects + shutdown_rejects + still_pending`.
/// `retried` counts *re-admissions*, not outcomes, and sits outside
/// the ledger: a retried request is still pending until its final
/// attempt settles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions offered (admitted or not).
    pub submitted: u64,
    /// Refused at the admission boundary (queue full).
    pub rejected_full: u64,
    /// Actions that ran to completion.
    pub completed: u64,
    /// Requests that settled [`Outcome::Failed`] — panicked, hit an
    /// injected fault, or trapped in a kernel, with any retry policy
    /// exhausted (the unwind was contained; the pool survived).
    pub failed: u64,
    /// Requests resolved cancelled (explicit or deadline).
    pub cancelled: u64,
    /// Requests shed under overload ([`RejectReason::Overload`]).
    pub shed: u64,
    /// Requests rejected because the tenant closed — refused at submit
    /// time or drained from the queue by the dispatcher.
    pub closed_rejects: u64,
    /// Queued requests rejected when the server shut down.
    pub shutdown_rejects: u64,
    /// Attempts re-admitted under the tenant's [`RetryPolicy`]
    /// (failed-attempt and shed retries). Not a settled bucket.
    pub retried: u64,
}

impl TenantStats {
    /// Requests that reached a terminal outcome or were refused.
    pub fn settled(&self) -> u64 {
        self.rejected_full
            + self.completed
            + self.failed
            + self.cancelled
            + self.shed
            + self.closed_rejects
            + self.shutdown_rejects
    }
}

#[derive(Default)]
struct TenantCounters {
    submitted: AtomicU64,
    rejected_full: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    closed_rejects: AtomicU64,
    shutdown_rejects: AtomicU64,
    retried: AtomicU64,
}

/// A request sitting in an admission queue (or the retry backlog).
struct Queued {
    action: Box<dyn FnOnce(&WorkerCtx) + Send>,
    cost: u64,
    /// The request's *root* token — the identity `ResponseHandle`
    /// cancels through; each dispatch derives a fresh attempt child.
    token: CancelToken,
    state: Arc<ReqState>,
    /// 0-based attempt number this entry represents.
    attempt: u32,
    /// Replayable body, for execution retries after a failed attempt.
    replay: Option<ReplayAction>,
}

struct TenantShared {
    id: usize,
    weight: u64,
    /// The tenant's movable home pin, read at *dispatch* time — a
    /// migration moves every not-yet-dispatched request of the subtree.
    bubble: Arc<Bubble>,
    queue: AdmissionQueue<Queued>,
    tag: PoolTag,
    counters: Arc<TenantCounters>,
    retry: Option<RetryPolicy>,
    /// Requests waiting out a retry backoff: `(due, request)`. Drained
    /// by the dispatcher once due (dispatched directly — they already
    /// won admission once), and swept with a typed rejection on tenant
    /// close / shutdown. Pushes re-check `queue.is_closed()` under this
    /// lock so no entry can slip in behind the closing sweep.
    retry_q: Mutex<Vec<(Instant, Queued)>>,
}

struct ServerInner {
    pool: Arc<Pool>,
    cfg: ServerConfig,
    /// Slot index == tenant id; `None` slots are retired tenants
    /// (slots are reused by later registrations).
    tenants: Mutex<Vec<Option<Arc<TenantShared>>>>,
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
    /// The dispatcher thread plus any successors respawned after a
    /// kill; `shutdown` joins the whole chain.
    dispatcher: Mutex<Vec<JoinHandle<()>>>,
    /// Times the dispatch loop was restarted (in place after a plain
    /// panic, or as a fresh thread after an injected kill).
    dispatcher_restarts: AtomicU64,
}

impl ServerInner {
    /// Wake the dispatcher (submission, completion, close, shutdown).
    fn kick(&self) {
        let _g = self.wake_lock.lock();
        self.wake_cv.notify_one();
    }

    fn live_tenants(&self) -> Vec<Arc<TenantShared>> {
        self.tenants.lock().iter().flatten().cloned().collect()
    }
}

/// Rides inside the dispatched job closure, so it runs on the worker
/// for every exit of an attempt: body completed, body panicked (the
/// dispatch wrapper classifies and calls [`FinishGuard::fail`]), body
/// dropped unrun at the grain boundary, or the whole closure dropped
/// by a dying thread. Its `Drop` is the last line of defence — it
/// settles the request if nothing else did (no client ever hangs) and
/// unconditionally maintains the `in_flight` gauge.
struct FinishGuard {
    inner: Arc<ServerInner>,
    tenant: Arc<TenantShared>,
    state: Arc<ReqState>,
    /// The request's root token (cancel identity across attempts).
    root: CancelToken,
    /// This attempt's child token, handed to the pool's grain boundary.
    attempt_token: CancelToken,
    /// 0-based attempt number.
    attempt: u32,
    cost: u64,
    replay: Option<ReplayAction>,
    /// Set by `complete`/`fail`; a drop with this still false means the
    /// attempt died without reporting.
    resolved: bool,
}

impl FinishGuard {
    /// The body returned normally: settle `Completed`.
    fn complete(&mut self) {
        self.resolved = true;
        let counters = &self.tenant.counters;
        self.state.settle(Outcome::Completed, || {
            counters.completed.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// The body panicked (already classified into `fault`): schedule a
    /// retry if the tenant's policy and a replayable body allow it,
    /// otherwise settle `Failed`.
    fn fail(&mut self, fault: RequestFault) {
        self.resolved = true;
        if let Some(replay) = self.replay.clone() {
            let action = {
                let r = replay.clone();
                Box::new(move |ctx: &WorkerCtx| r(ctx))
            };
            let q = Queued {
                action,
                cost: self.cost,
                token: self.root.clone(),
                state: self.state.clone(),
                attempt: self.attempt,
                replay: Some(replay),
            };
            if schedule_retry(&self.inner, &self.tenant, q).is_ok() {
                return;
            }
        }
        let counters = &self.tenant.counters;
        self.state.settle(Outcome::Failed(fault), || {
            counters.failed.fetch_add(1, Ordering::Relaxed);
        });
    }
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        if !self.resolved {
            // The attempt never reported. Two ways here: the grain
            // boundary dropped the body unrun because the *attempt*
            // token resolved cancelled (root cancel or deadline seen
            // through the parent chain — the root's own hook never
            // fires for a deadline observed on a child), or the
            // executing thread died with the closure never run /
            // mid-unwind without reaching `fail` (e.g. an injected
            // kill). Settle accordingly so no client hangs; the gate
            // makes a lost race a silent no-op.
            if !self.attempt_token.was_claimed() && self.attempt_token.is_cancelled() {
                let counters = &self.tenant.counters;
                self.state.settle(Outcome::Cancelled, || {
                    counters.cancelled.fetch_add(1, Ordering::Relaxed);
                });
            } else {
                // If this drop is running inside an unwind that a fault
                // point on this thread raised (e.g. `worker.body` fires
                // in the pool *around* our catch_unwind wrapper), the
                // thread-local injection record recovers the typed
                // fault; `fail` then applies the retry policy exactly
                // as for an in-body failure.
                let fault = if std::thread::panicking() {
                    htvm_core::faults::take_last_injected()
                        .map(|f| RequestFault::new(f.site, f.to_string()))
                } else {
                    None
                };
                let fault = fault.unwrap_or_else(|| {
                    RequestFault::new("serve.abandoned", "attempt dropped without running")
                });
                self.fail(fault);
            }
        }
        self.inner.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.inner.kick();
    }
}

/// Try to park `q` in its tenant's retry backlog for another attempt.
/// `q.attempt` is the attempt that just failed (or was shed unrun);
/// on success the entry is re-numbered `attempt + 1` and `Err` hands
/// the request back untouched when the policy refuses (caller settles).
fn schedule_retry(
    inner: &Arc<ServerInner>,
    t: &Arc<TenantShared>,
    mut q: Queued,
) -> Result<(), Queued> {
    let Some(policy) = &t.retry else {
        return Err(q);
    };
    if !policy.attempts_allow(q.attempt) {
        return Err(q);
    }
    let c = &t.counters;
    let retried = c.retried.load(Ordering::Relaxed);
    if !policy.budget_allows(retried, c.submitted.load(Ordering::Relaxed)) {
        return Err(q);
    }
    if q.token.is_cancelled() {
        // The root's cancel hook already settled the request; the
        // caller's settle will lose the gate and count nothing.
        return Err(q);
    }
    let backoff = policy.backoff_for(q.attempt, retried);
    if let Some(d) = q.token.deadline() {
        if Instant::now() + backoff >= d {
            // Doomed: the deadline expires before the retry could run.
            return Err(q);
        }
    }
    {
        // is_closed is re-checked under the retry_q lock: the closing
        // sweep (close/shutdown) drains under this same lock *after*
        // closing the queue, so either we see the close here or the
        // sweep sees our entry — never a stranded request.
        let mut rq = t.retry_q.lock();
        if inner.shutdown.load(Ordering::SeqCst) || t.queue.is_closed() {
            return Err(q);
        }
        q.attempt += 1;
        c.retried.fetch_add(1, Ordering::Relaxed);
        rq.push((Instant::now() + backoff, q));
    }
    inner.kick();
    Ok(())
}

/// A handle to a registered tenant. Dropping the handle closes the
/// tenant (queued requests resolve `Rejected(TenantClosed)`; in-flight
/// requests finish normally).
pub struct TenantHandle {
    shared: Arc<TenantShared>,
    inner: Arc<ServerInner>,
    closed_by_handle: bool,
}

impl TenantHandle {
    /// The tenant's id (its dispatcher key).
    pub fn id(&self) -> usize {
        self.shared.id
    }

    /// The tenant's dispatch weight.
    pub fn weight(&self) -> u64 {
        self.shared.weight
    }

    /// The tenant's current home domain, or `None` while its bubble is
    /// burst (requests dispatch unaffine).
    pub fn home(&self) -> Option<DomainId> {
        self.shared.bubble.domain()
    }

    /// The tenant's bubble handle — re-pin ([`Bubble::set_domain`]) or
    /// release ([`Bubble::burst`]) the whole subtree at runtime.
    pub fn bubble(&self) -> &Arc<Bubble> {
        &self.shared.bubble
    }

    /// Submit a parcel with a fresh cancellation token.
    pub fn submit(&self, parcel: NativeParcel) -> Result<ResponseHandle, SubmitError> {
        self.submit_with_token(parcel, CancelToken::new())
    }

    /// Submit a parcel that auto-cancels at `deadline` (observed at the
    /// pool's grain boundary — an expired request queued behind a long
    /// backlog resolves `Cancelled` instead of running).
    pub fn submit_with_deadline(
        &self,
        parcel: NativeParcel,
        deadline: Instant,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_with_token(parcel, CancelToken::with_deadline(deadline))
    }

    /// Submit a parcel guarded by a caller-supplied token — e.g. a
    /// `child()` of a tenant-wide token, so cancelling the parent fans
    /// out to every outstanding request of the subtree.
    ///
    /// Each token must guard **at most one** submission: the token's
    /// cancelled-hook slot holds one hook, so a second submission with
    /// the same token silently disarms the first request's cancelled
    /// resolution and can hang its `wait()`. To tie many requests to
    /// one cancellation scope, submit a fresh [`CancelToken::child`]
    /// of the shared token per request (as above), never the shared
    /// token itself.
    pub fn submit_with_token(
        &self,
        parcel: NativeParcel,
        token: CancelToken,
    ) -> Result<ResponseHandle, SubmitError> {
        let counters = &self.shared.counters;
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        let state = ReqState::new();
        let cost = parcel.cost();
        let replay = parcel.replay_action();
        let queued = Queued {
            action: parcel.into_action(),
            cost,
            token: token.clone(),
            state: state.clone(),
            attempt: 0,
            replay,
        };
        match self.shared.queue.try_push(queued) {
            Ok(()) => {
                // Arm the cancelled resolution only once the request is
                // admitted, so a rejected submission never leaves a
                // hook on the caller's token. Exactly-once still holds
                // against everything the dispatcher may already have
                // done with the queued request: if the token resolved
                // cancelled first the hook runs immediately (here), and
                // if it was claimed (dispatched, or shed via the
                // rejection claim) the hook is dropped unrun.
                {
                    let state = state.clone();
                    let counters = counters.clone();
                    token.on_cancelled(move || {
                        state.settle(Outcome::Cancelled, || {
                            counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
                self.inner.kick();
                Ok(ResponseHandle { state, token })
            }
            Err(AdmitError::Full(_)) => {
                counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(AdmitError::Closed(_)) => {
                counters.closed_rejects.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::TenantClosed)
            }
        }
    }

    /// Current admission-queue depth plus requests waiting out a retry
    /// backoff.
    pub fn queued(&self) -> usize {
        self.shared.queue.len() + self.shared.retry_q.lock().len()
    }

    /// Lifetime counters (see [`TenantStats`] for the conservation
    /// invariant).
    pub fn stats(&self) -> TenantStats {
        let c = &self.shared.counters;
        TenantStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected_full: c.rejected_full.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            closed_rejects: c.closed_rejects.load(Ordering::Relaxed),
            shutdown_rejects: c.shutdown_rejects.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
        }
    }

    /// This tenant's slice of the pool's execution counters (jobs whose
    /// bodies ran / were dropped cancelled at the grain boundary).
    pub fn pool_slice(&self) -> TagStats {
        self.shared.tag.stats()
    }

    /// Stop admitting (idempotent). Queued requests resolve
    /// `Rejected(TenantClosed)` at the dispatcher's next pass;
    /// in-flight requests finish normally; the tenant's slot is
    /// retired once drained.
    pub fn close(&self) {
        self.shared.queue.close();
        self.inner.kick();
    }
}

impl Drop for TenantHandle {
    fn drop(&mut self) {
        if self.closed_by_handle {
            self.close();
        }
    }
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantHandle")
            .field("id", &self.id())
            .field("weight", &self.weight())
            .field("queued", &self.queued())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The multi-tenant serving front-end (see the [module docs](self)).
pub struct Server {
    inner: Arc<ServerInner>,
}

impl Server {
    /// Serve on `htvm`'s pool — the pool handle outlives any single
    /// batch run, which is exactly what a server needs.
    pub fn new(htvm: &Htvm, cfg: ServerConfig) -> Self {
        Self::on_pool(htvm.pool(), cfg)
    }

    /// Serve on an explicit pool handle.
    pub fn on_pool(pool: Arc<Pool>, cfg: ServerConfig) -> Self {
        let inner = Arc::new(ServerInner {
            pool,
            cfg,
            tenants: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            wake_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
            dispatcher: Mutex::new(Vec::new()),
            dispatcher_restarts: AtomicU64::new(0),
        });
        let handle = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("htvm-serve-dispatch".into())
                .spawn(move || dispatcher_thread(inner))
                .expect("spawn dispatcher thread")
        };
        inner.dispatcher.lock().push(handle);
        Self { inner }
    }

    /// Register a tenant; its id is the smallest retired slot (ids are
    /// reused after teardown).
    ///
    /// # Panics
    /// Panics if called after [`Server::shutdown`], or if
    /// `cfg.home` is out of range for the pool's topology.
    pub fn register_tenant(&self, cfg: TenantConfig) -> TenantHandle {
        let nd = self.inner.pool.num_domains();
        let capacity = cfg
            .queue_capacity
            .unwrap_or(self.inner.cfg.default_queue_capacity);
        let mut tenants = self.inner.tenants.lock();
        // Checked under the tenants lock, against a flag that is also
        // *stored* under it (see `Server::shutdown`): a registration
        // that passes this check inserted its tenant before the flag
        // was set, so the dispatcher's final drain pass — which
        // snapshots the tenants under the lock after observing the
        // flag — is guaranteed to see and reject it. No tenant can
        // slip in behind the final drain and strand its requests.
        assert!(
            !self.inner.shutdown.load(Ordering::SeqCst),
            "register_tenant on a shut-down server"
        );
        let id = tenants
            .iter()
            .position(Option::is_none)
            .unwrap_or(tenants.len());
        let home = cfg.home.unwrap_or(DomainId((id % nd) as u64));
        assert!(
            (home.0 as usize) < nd,
            "{home} out of range for a {nd}-domain pool"
        );
        let shared = Arc::new(TenantShared {
            id,
            weight: cfg.weight.max(1),
            bubble: Bubble::pinned(home),
            queue: AdmissionQueue::new(capacity),
            tag: PoolTag::new(),
            counters: Arc::new(TenantCounters::default()),
            retry: cfg.retry,
            retry_q: Mutex::new(Vec::new()),
        });
        if id == tenants.len() {
            tenants.push(Some(shared.clone()));
        } else {
            tenants[id] = Some(shared.clone());
        }
        drop(tenants);
        self.inner.kick();
        TenantHandle {
            shared,
            inner: self.inner.clone(),
            closed_by_handle: true,
        }
    }

    /// The pool this server dispatches into.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.inner.pool
    }

    /// Start a BubbleSched-style [`Autopilot`] over this server: a
    /// controller thread that samples the pool's steal/queue/occupancy
    /// signals each tick and steers tenant bubbles (migrate / burst /
    /// gang) and the elastic worker set (grow / retire). Several
    /// autopilots over one server would fight; start at most one.
    pub fn autopilot(&self, cfg: AutopilotConfig) -> Autopilot {
        let inner = self.inner.clone();
        Autopilot::start(inner.pool.clone(), cfg, move || {
            inner
                .live_tenants()
                .iter()
                .map(|t| BubbleTenant {
                    id: t.id,
                    bubble: t.bubble.clone(),
                    executed: t.tag.stats().executed,
                })
                .collect()
        })
    }

    /// Requests dispatched into the pool but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Total requests currently sitting in admission queues or retry
    /// backlogs.
    pub fn queued_total(&self) -> usize {
        self.inner
            .live_tenants()
            .iter()
            .map(|t| t.queue.len() + t.retry_q.lock().len())
            .sum()
    }

    /// Times the dispatch loop was restarted by its supervision
    /// harness (in place after a contained panic, or as a respawned
    /// thread after an injected kill). 0 in a healthy server.
    pub fn dispatcher_restarts(&self) -> u64 {
        self.inner.dispatcher_restarts.load(Ordering::Relaxed)
    }

    /// Live (registered, not yet retired) tenants.
    pub fn tenant_count(&self) -> usize {
        self.inner.live_tenants().len()
    }

    /// Block (politely yielding) until no request is queued or in
    /// flight, or `timeout` elapses; returns whether the server
    /// drained. Unlike `Pool::wait_quiescent` this only covers *this
    /// server's* requests, so it is safe alongside other pool users.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.queued_total() != 0 || self.in_flight() != 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Stop the dispatcher (idempotent): close every tenant, resolve
    /// all queued requests `Rejected(ServerShutdown)`, and join the
    /// dispatcher thread. In-flight requests finish normally on the
    /// pool.
    pub fn shutdown(&self) {
        {
            // Store the flag under the tenants lock so it serializes
            // against `register_tenant`'s check: every registration
            // either completes before this store (and is seen by the
            // dispatcher's final drain) or observes the flag and
            // panics. Without the lock a registration could pass the
            // check yet insert after the final drain's snapshot,
            // stranding its requests forever.
            let _tenants = self.inner.tenants.lock();
            self.inner.shutdown.store(true, Ordering::SeqCst);
        }
        self.inner.kick();
        // Join the dispatcher *chain*: a thread dying to an injected
        // kill pushes its successor's handle before it exits (in its
        // watch guard's drop glue), so once `join` returns the push is
        // visible — loop until the list stays empty. A shutdown reached
        // from the dispatcher thread itself (a `Server` released from a
        // value it dispatched) must detach rather than self-join: std's
        // join panics on the EDEADLK.
        let me = std::thread::current().id();
        loop {
            let handles: Vec<JoinHandle<()>> = self.inner.dispatcher.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                if h.thread().id() == me {
                    continue;
                }
                let _ = h.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tenants", &self.tenant_count())
            .field("queued", &self.queued_total())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// Resolve a popped-but-never-dispatched request as `Rejected(reason)`.
/// The dispatcher *claims* the root token first (disarming the cancel
/// hook — if the claim loses, a concurrent cancel already resolved the
/// request), then races the settle gate like every other resolver.
fn resolve_rejected(q: Queued, reason: RejectReason, bucket: &AtomicU64) {
    if q.token.try_claim() {
        q.state.settle(Outcome::Rejected(reason), || {
            bucket.fetch_add(1, Ordering::Relaxed);
        });
    }
}

/// Drop guard armed while a dispatcher thread is alive: if the thread
/// dies unwinding (an injected kill rethrown by [`dispatcher_thread`]),
/// the guard respawns a successor — unless the server is shutting
/// down, in which case dying *is* the clean exit.
struct DispatcherWatch {
    inner: Arc<ServerInner>,
    armed: bool,
}

impl Drop for DispatcherWatch {
    fn drop(&mut self) {
        if !self.armed || self.inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let inner = self.inner.clone();
        let handle = std::thread::Builder::new()
            .name("htvm-serve-dispatch".into())
            .spawn(move || dispatcher_thread(inner));
        if let Ok(h) = handle {
            // Pushed from the dying thread's drop glue, so `shutdown`'s
            // join of *this* thread happens-after the push and its next
            // sweep sees the successor.
            self.inner.dispatcher.lock().push(h);
        }
    }
}

/// The dispatcher thread body: [`dispatcher_loop`] under the
/// supervision harness. A contained panic restarts the loop in place
/// (same thread, fresh `Wdrr` state); an injected kill is rethrown so
/// the thread dies and [`DispatcherWatch`] respawns a successor. Both
/// paths count in `dispatcher_restarts`. Requests are never lost to
/// either: the `serve.dispatch` fault point fires before the pass pops
/// anything, and everything queued simply waits for the next pass.
fn dispatcher_thread(inner: Arc<ServerInner>) {
    let mut watch = DispatcherWatch {
        inner: inner.clone(),
        armed: true,
    };
    loop {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatcher_loop(inner.clone())
        }));
        match result {
            Ok(()) => break, // clean shutdown exit
            Err(payload) => {
                inner.dispatcher_restarts.fetch_add(1, Ordering::Relaxed);
                if htvm_core::faults::injected_from_payload(payload.as_ref())
                    .is_some_and(|f| f.kill)
                {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
    watch.armed = false;
}

fn dispatcher_loop(inner: Arc<ServerInner>) {
    let mut drr = Wdrr::new(inner.cfg.quantum);
    loop {
        // Fault-injection point for supervision tests: fires while no
        // request is held, so a panic/kill here strands nothing.
        htvm_core::fault_point!(inner.pool.fault_plane(), "serve.dispatch");
        let shutting_down = inner.shutdown.load(Ordering::SeqCst);
        let snapshot = inner.live_tenants();

        // Retire closed tenants: drain their queues and retry backlogs
        // with a typed rejection, then free the slot.
        for t in &snapshot {
            if shutting_down {
                t.queue.close();
            }
            if t.queue.is_closed() {
                let (reason, bucket) = if shutting_down {
                    (RejectReason::ServerShutdown, &t.counters.shutdown_rejects)
                } else {
                    (RejectReason::TenantClosed, &t.counters.closed_rejects)
                };
                for q in t.queue.drain() {
                    resolve_rejected(q, reason, bucket);
                }
                let parked: Vec<(Instant, Queued)> = std::mem::take(&mut *t.retry_q.lock());
                for (_, q) in parked {
                    resolve_rejected(q, reason, bucket);
                }
                drr.remove(t.id);
                inner.tenants.lock()[t.id] = None;
            }
        }
        if shutting_down {
            return;
        }
        let live: Vec<Arc<TenantShared>> = snapshot
            .into_iter()
            .filter(|t| !t.queue.is_closed())
            .collect();

        // Shed overload: newest work from the lowest-weight backlogged
        // tenant goes first, until back under the watermark. A tenant
        // with a retry policy gets its shed work parked for a backoff
        // instead of rejected — an unrun body is replayable by
        // definition, so one-shot parcels are eligible too.
        loop {
            let total: usize = live.iter().map(|t| t.queue.len()).sum();
            if total <= inner.cfg.max_queued_total {
                break;
            }
            let Some(t) = live
                .iter()
                .filter(|t| !t.queue.is_empty())
                .min_by_key(|t| t.weight)
            else {
                break;
            };
            match t.queue.pop_newest() {
                Some(q) => {
                    if let Err(q) = schedule_retry(&inner, t, q) {
                        resolve_rejected(q, RejectReason::Overload, &t.counters.shed);
                    }
                }
                None => continue,
            }
        }

        // Re-dispatch due retries directly under the in-flight cap:
        // they won admission (and a DRR grant) once already — the
        // backoff, not the round, is their pacing. `idle_wait` bounds
        // how stale a due time can go unnoticed.
        let mut dispatched = 0u64;
        let now = Instant::now();
        for t in &live {
            loop {
                if inner.in_flight.load(Ordering::SeqCst) >= inner.cfg.max_in_flight {
                    break;
                }
                let due = {
                    let mut rq = t.retry_q.lock();
                    match rq.iter().position(|(due, _)| *due <= now) {
                        Some(i) => rq.swap_remove(i).1,
                        None => break,
                    }
                };
                dispatch_queued(&inner, t, due);
                dispatched += 1;
            }
        }

        // Weighted dispatch under the in-flight cap. `drr` may still
        // hold keys absent from `by_id`: a tenant that closed between
        // the retire pass above and the `live` filter keeps its slot
        // until the next pass retires it, so the round's closures must
        // treat an unknown key as idle rather than index out of range.
        let mut by_id: Vec<Option<&Arc<TenantShared>>> = Vec::new();
        for t in &live {
            if by_id.len() <= t.id {
                by_id.resize(t.id + 1, None);
            }
            by_id[t.id] = Some(t);
            drr.ensure(t.id, t.weight);
        }
        let capacity = inner
            .cfg
            .max_in_flight
            .saturating_sub(inner.in_flight.load(Ordering::SeqCst)) as u64;
        if capacity > 0 {
            let inner_ref = &inner;
            dispatched += drr.round(
                capacity,
                |k| {
                    by_id
                        .get(k)
                        .copied()
                        .flatten()
                        .and_then(|t| t.queue.peek(|q| q.cost))
                },
                |k| {
                    if let Some(t) = by_id.get(k).copied().flatten() {
                        dispatch_one(inner_ref, t);
                    }
                },
            );
        }

        if dispatched == 0 {
            // Nothing moved this pass: sleep until a kick (submit,
            // completion, close, shutdown) or the idle timeout — the
            // timeout bounds the staleness of any kick that raced in
            // between our snapshot and the wait, and keeps not-yet-due
            // retry backoffs honored promptly.
            let mut g = inner.wake_lock.lock();
            if !inner.shutdown.load(Ordering::SeqCst) {
                inner.wake_cv.wait_for(&mut g, inner.cfg.idle_wait);
            }
        }
    }
}

/// Pop one request from `t` and hand it to the pool.
fn dispatch_one(inner: &Arc<ServerInner>, t: &Arc<TenantShared>) {
    if let Some(q) = t.queue.pop() {
        dispatch_queued(inner, t, q);
    }
}

/// Hand a request to the pool with the full envelope (home domain,
/// attempt token, tag) and the finish guard riding inside the closure.
fn dispatch_queued(inner: &Arc<ServerInner>, t: &Arc<TenantShared>, q: Queued) {
    if q.token.is_cancelled() {
        // Already resolved by the root's cancel hook while queued;
        // nothing to dispatch and the in-flight gauge was never
        // touched.
        return;
    }
    inner.in_flight.fetch_add(1, Ordering::SeqCst);
    // Each attempt runs under its own child of the root token: the
    // child observes root cancels and deadlines through the parent
    // chain (so grain-boundary drops still work), while leaving the
    // root PENDING for the *next* attempt if this one fails into a
    // retry.
    let attempt_token = q.token.child();
    let mut guard = FinishGuard {
        inner: inner.clone(),
        tenant: t.clone(),
        state: q.state,
        root: q.token,
        attempt_token: attempt_token.clone(),
        attempt: q.attempt,
        cost: q.cost,
        replay: q.replay,
        resolved: false,
    };
    let action = q.action;
    inner.pool.spawn_with(
        SpawnOpts {
            // Resolved at dispatch time: a bubble migration moves every
            // not-yet-dispatched request; a burst bubble goes unaffine.
            domain: t.bubble.domain(),
            token: Some(attempt_token),
            tag: Some(t.tag.clone()),
        },
        move |ctx| {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| action(ctx)));
            match result {
                Ok(()) => guard.complete(),
                Err(payload) => {
                    // Classify into a typed fault, settle-or-retry,
                    // then re-raise so the pool's panic accounting and
                    // kill propagation (worker death → DeathWatch)
                    // behave exactly as for an unwrapped body.
                    let fault = RequestFault::from_payload(payload.as_ref());
                    guard.fail(fault);
                    drop(guard);
                    std::panic::resume_unwind(payload);
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_core::Topology;

    fn quick_server(cfg: ServerConfig) -> Server {
        Server::on_pool(Arc::new(Pool::with_topology(Topology::domains(2, 1))), cfg)
    }

    #[test]
    fn submit_completes_and_counts() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let handles: Vec<_> = (0..20)
            .map(|_| tenant.submit(NativeParcel::new(|_| {})).unwrap())
            .collect();
        for h in &handles {
            assert_eq!(h.wait(), Outcome::Completed);
        }
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.settled(), 20);
        assert_eq!(tenant.pool_slice().executed, 20);
    }

    #[test]
    fn queue_full_is_typed_backpressure() {
        // A paused pool can't drain, so the 2-slot queue must overflow.
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            queue_capacity: Some(2),
            ..TenantConfig::default()
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        // Wait until the blocker is actually in flight so the queue
        // stays full behind it.
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let mut accepted = Vec::new();
        let mut full = 0;
        for _ in 0..20 {
            match tenant.submit(NativeParcel::new(|_| {})) {
                Ok(h) => accepted.push(h),
                Err(SubmitError::QueueFull) => full += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(full > 0, "bounded queue must refuse at capacity");
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        for h in &accepted {
            assert_eq!(h.wait(), Outcome::Completed);
        }
        assert_eq!(tenant.stats().rejected_full, full);
    }

    #[test]
    fn cancel_while_queued_resolves_cancelled() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        let victim = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert!(victim.cancel(), "queued request is cancellable");
        assert_eq!(victim.wait(), Outcome::Cancelled);
        assert!(!victim.cancel(), "second cancel is a no-op");
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn expired_deadline_resolves_cancelled() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant
            .submit_with_deadline(
                NativeParcel::new(|_| panic!("must not run")),
                Instant::now() - Duration::from_millis(1),
            )
            .unwrap();
        assert_eq!(h.wait(), Outcome::Cancelled);
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().failed, 0);
    }

    #[test]
    fn panicking_action_resolves_failed() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant
            .submit(NativeParcel::new(|_| panic!("injected request failure")))
            .unwrap();
        match h.wait() {
            Outcome::Failed(f) => {
                assert_eq!(f.site, "request.body");
                assert!(f.message.contains("injected request failure"), "{f}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        let ok = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(ok.wait(), Outcome::Completed, "worker survived");
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().failed, 1);
    }

    #[test]
    fn close_rejects_queued_requests_and_retires_the_slot() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let stranded = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        tenant.close();
        assert!(matches!(
            tenant.submit(NativeParcel::new(|_| {})),
            Err(SubmitError::TenantClosed)
        ));
        assert_eq!(
            stranded.wait(),
            Outcome::Rejected(RejectReason::TenantClosed)
        );
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed, "in-flight unaffected");
        assert!(server.wait_idle(Duration::from_secs(10)));
        // The slot retires and is reused by the next registration.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.tenant_count() != 0 {
            assert!(Instant::now() < deadline, "tenant never retired");
            std::thread::yield_now();
        }
        let next = server.register_tenant(TenantConfig::weighted(2));
        assert_eq!(next.id(), tenant.id(), "retired slot is reused");
    }

    #[test]
    fn dispatcher_survives_tenants_closing_mid_pass() {
        // Regression: a tenant closing between the dispatcher's retire
        // check and its live filter kept a `Wdrr` key with no `by_id`
        // entry, and the round's closures indexed out of bounds —
        // killing the dispatcher and hanging every later request. Churn
        // the two shapes that exposed it (the only tenant closes →
        // `by_id` is empty; the highest-id tenant closes → `by_id` is
        // short) and then prove the dispatcher is still alive.
        let server = quick_server(ServerConfig::default());
        let mut handles = Vec::new();
        let mut persistent = None;
        for round in 0..200 {
            if round == 100 {
                // From here on the churned tenant gets id 1: closing it
                // leaves a key above `by_id.len()` while id 0 stays live.
                persistent = Some(server.register_tenant(TenantConfig::weighted(1)));
            }
            let tenant = server.register_tenant(TenantConfig::weighted(1));
            for _ in 0..3 {
                handles.push(tenant.submit(NativeParcel::new(|_| {})).unwrap());
            }
            tenant.close();
        }
        // A dead dispatcher can't dispatch: a fresh tenant's request
        // would never resolve. Bounded wait so the failure is a panic,
        // not a hung test.
        let fresh = server.register_tenant(TenantConfig::weighted(1));
        let probe = fresh.submit(NativeParcel::new(|_| {})).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while probe.try_outcome().is_none() {
            assert!(
                Instant::now() < deadline,
                "dispatcher died during tenant churn"
            );
            std::thread::yield_now();
        }
        assert_eq!(probe.wait(), Outcome::Completed);
        // Every churned request still settled exactly once (Completed
        // or Rejected(TenantClosed), depending on when its tenant's
        // close landed).
        for h in &handles {
            while h.try_outcome().is_none() {
                assert!(Instant::now() < deadline, "churned request never settled");
                std::thread::yield_now();
            }
            assert!(matches!(
                h.wait(),
                Outcome::Completed | Outcome::Rejected(RejectReason::TenantClosed)
            ));
        }
        drop(persistent);
    }

    #[test]
    fn rejected_submission_does_not_arm_the_callers_token() {
        // Regression: the cancel hook used to be armed before admission,
        // so a QueueFull/TenantClosed rejection left it on the caller's
        // token — a later cancel of that token (e.g. a tenant-wide
        // parent fanning out) then counted a `cancelled` for a request
        // already counted `rejected_full`.
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            queue_capacity: Some(1),
            ..TenantConfig::default()
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let queued = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        let rejected_token = CancelToken::new();
        assert!(matches!(
            tenant.submit_with_token(NativeParcel::new(|_| {}), rejected_token.clone()),
            Err(SubmitError::QueueFull)
        ));
        // The caller still owns the token; cancelling it later must not
        // resolve (or count) anything for the rejected submission.
        rejected_token.cancel();
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        assert_eq!(queued.wait(), Outcome::Completed);
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected_full, 1);
        assert_eq!(
            stats.cancelled, 0,
            "rejected submission was counted cancelled"
        );
        assert_eq!(stats.settled(), stats.submitted);
    }

    #[test]
    fn submit_after_close_lands_in_closed_rejects() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let done = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(done.wait(), Outcome::Completed);
        tenant.close();
        assert!(matches!(
            tenant.submit(NativeParcel::new(|_| {})),
            Err(SubmitError::TenantClosed)
        ));
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(
            stats.closed_rejects, 1,
            "submit-time close reject uncounted"
        );
        assert_eq!(stats.settled(), stats.submitted, "conservation violated");
    }

    #[test]
    fn overload_sheds_lowest_weight_newest_first() {
        // Paused drain (max_in_flight 1 + blocker) and a tiny watermark
        // force the shed path deterministically.
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            max_queued_total: 4,
            ..ServerConfig::default()
        });
        let heavy = server.register_tenant(TenantConfig::weighted(8));
        let light = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = heavy
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(light.submit(NativeParcel::new(|_| {})).unwrap());
            handles.push(heavy.submit(NativeParcel::new(|_| {})).unwrap());
        }
        // Wait for the dispatcher to act on the over-watermark queues.
        let deadline = Instant::now() + Duration::from_secs(10);
        while light.stats().shed == 0 {
            assert!(Instant::now() < deadline, "nothing was shed");
            std::thread::yield_now();
        }
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        let outcomes: Vec<Outcome> = handles.iter().map(|h| h.wait()).collect();
        assert!(outcomes.contains(&Outcome::Rejected(RejectReason::Overload)));
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert!(
            light.stats().shed >= heavy.stats().shed,
            "lowest weight sheds first: light={:?} heavy={:?}",
            light.stats(),
            heavy.stats()
        );
    }

    #[test]
    fn shutdown_rejects_queued_and_joins() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let stranded = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        gate.store(true, Ordering::Release);
        server.shutdown();
        assert_eq!(
            stranded.wait(),
            Outcome::Rejected(RejectReason::ServerShutdown)
        );
        assert_eq!(blocker.wait(), Outcome::Completed);
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn bubble_moves_are_resolved_at_dispatch_time() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            home: Some(DomainId(0)),
            ..TenantConfig::default()
        });
        assert_eq!(tenant.home(), Some(DomainId(0)));
        let pool = server.pool().clone();
        let spawns_at = |pool: &Pool| pool.stats().domain_spawns;

        let base = spawns_at(&pool);
        tenant.submit(NativeParcel::new(|_| {})).unwrap().wait();
        let after_pinned = spawns_at(&pool);
        assert_eq!(after_pinned[0], base[0] + 1, "pinned dispatch homes to 0");

        // Re-pin: the *next* dispatch follows the bubble, no resubmit.
        tenant.bubble().set_domain(DomainId(1));
        assert_eq!(tenant.home(), Some(DomainId(1)));
        tenant.submit(NativeParcel::new(|_| {})).unwrap().wait();
        let after_moved = spawns_at(&pool);
        assert_eq!(
            after_moved[1],
            after_pinned[1] + 1,
            "migrated dispatch homes to 1"
        );

        // Burst: dispatches go unaffine — no domain-spawn record at all.
        tenant.bubble().burst();
        assert_eq!(tenant.home(), None);
        tenant.submit(NativeParcel::new(|_| {})).unwrap().wait();
        let after_burst = spawns_at(&pool);
        assert_eq!(
            after_burst.iter().sum::<u64>(),
            after_moved.iter().sum::<u64>(),
            "burst dispatch is unaffine"
        );
        assert!(server.wait_idle(Duration::from_secs(10)));
    }

    #[test]
    fn autopilot_grows_the_pool_under_queue_pressure_and_retires_when_idle() {
        use crate::autopilot::AutopilotConfig;
        // 2 domains × 1 worker, with one vacant headroom slot each.
        let pool = Arc::new(Pool::with_elastic(Topology::domains(2, 1), 1));
        let server = Server::on_pool(pool.clone(), ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let pilot = server.autopilot(AutopilotConfig {
            interval: Duration::from_millis(1),
            ..AutopilotConfig::default()
        });
        assert_eq!(pool.active_workers(), 2);

        // Both active workers block; a backlog piles up in the pool's
        // queues behind them until the controller must grow.
        let gate = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let g = gate.clone();
            handles.push(
                tenant
                    .submit(NativeParcel::new(move |_| {
                        while !g.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                    }))
                    .unwrap(),
            );
        }
        for _ in 0..40 {
            handles.push(tenant.submit(NativeParcel::new(|_| {})).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool.stats().grows == 0 {
            assert!(Instant::now() < deadline, "autopilot never grew the pool");
            std::thread::yield_now();
        }
        gate.store(true, Ordering::Release);
        for h in &handles {
            assert_eq!(h.wait(), Outcome::Completed);
        }
        assert!(server.wait_idle(Duration::from_secs(10)));

        // Idle streak: the controller hands the extra workers back.
        while pool.stats().retires == 0 {
            assert!(Instant::now() < deadline, "autopilot never retired");
            std::thread::yield_now();
        }
        let stats = pilot.stats();
        assert!(stats.grows >= 1, "{stats:?}");
        pilot.stop();
        pilot.stop(); // idempotent
        assert!(pilot.stats().retires >= 1 || pool.stats().retires >= 1);
    }

    #[test]
    fn tenant_wide_token_fans_out_to_children() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let root = CancelToken::new();
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let children: Vec<_> = (0..4)
            .map(|_| {
                tenant
                    .submit_with_token(NativeParcel::new(|_| {}), root.child())
                    .unwrap()
            })
            .collect();
        root.cancel();
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        for c in &children {
            assert_eq!(
                c.wait(),
                Outcome::Cancelled,
                "queued children observe the parent at the grain boundary"
            );
        }
    }

    #[test]
    fn flaky_replayable_request_retries_to_completion() {
        use std::sync::atomic::AtomicU32;
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(100),
                ..RetryPolicy::attempts(3)
            }),
            ..TenantConfig::default()
        });
        // Fails twice, succeeds on the third attempt — exactly within
        // a 3-attempt policy.
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        let h = tenant
            .submit(NativeParcel::replayable(move |_| {
                if t.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient failure");
                }
            }))
            .unwrap();
        assert_eq!(h.wait(), Outcome::Completed);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.retried, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.settled(), stats.submitted, "conservation");
    }

    #[test]
    fn exhausted_retries_settle_failed_with_the_last_fault() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(100),
                ..RetryPolicy::attempts(2)
            }),
            ..TenantConfig::default()
        });
        let h = tenant
            .submit(NativeParcel::replayable(|_| panic!("always broken")))
            .unwrap();
        match h.wait() {
            Outcome::Failed(f) => assert!(f.message.contains("always broken"), "{f}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.retried, 1, "one re-admission under attempts(2)");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.settled(), stats.submitted, "conservation");
    }

    #[test]
    fn one_shot_body_never_retries_execution() {
        // A FnOnce parcel is consumed by its first run: the policy must
        // not (cannot) replay it, so the failure settles immediately.
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            retry: Some(RetryPolicy::attempts(5)),
            ..TenantConfig::default()
        });
        let h = tenant
            .submit(NativeParcel::new(|_| panic!("one-shot failure")))
            .unwrap();
        assert!(matches!(h.wait(), Outcome::Failed(_)));
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().retried, 0);
        assert_eq!(tenant.stats().failed, 1);
    }

    #[test]
    fn fallible_parcel_surfaces_a_typed_kernel_fault() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant
            .submit(NativeParcel::fallible(|_| {
                Err::<(), _>("index 9 out of bounds for array of length 4")
            }))
            .unwrap();
        match h.wait() {
            Outcome::Failed(f) => {
                assert_eq!(f.site, "kernel");
                assert_eq!(f.message, "index 9 out of bounds for array of length 4");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().failed, 1);
    }

    #[test]
    fn deadline_bounds_the_retry_loop() {
        // The deadline expires before any backoff could complete, so
        // the first failure settles instead of parking a doomed retry.
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_secs(5),
                max_backoff: Duration::from_secs(5),
                ..RetryPolicy::attempts(10)
            }),
            ..TenantConfig::default()
        });
        let h = tenant
            .submit_with_deadline(
                NativeParcel::replayable(|_| panic!("fails fast")),
                Instant::now() + Duration::from_millis(200),
            )
            .unwrap();
        assert!(
            matches!(h.wait(), Outcome::Failed(_)),
            "settles instead of waiting out a 5s backoff"
        );
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().retried, 0);
    }

    #[test]
    fn wait_timeout_returns_none_while_in_flight_then_the_outcome() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let h = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        assert_eq!(
            h.wait_timeout(Duration::from_millis(10)),
            None,
            "still in flight"
        );
        gate.store(true, Ordering::Release);
        assert_eq!(
            h.wait_timeout(Duration::from_secs(10)),
            Some(Outcome::Completed)
        );
    }

    #[test]
    fn killed_dispatcher_respawns_and_keeps_serving() {
        use htvm_core::{FaultKind, FaultPlan, FaultRule, Topology};
        // The first two dispatch passes die to an injected kill —
        // each takes its whole thread down — and the DispatcherWatch
        // guard respawns a successor both times. max=2 lets the third
        // thread live.
        let plan = FaultPlan::new().rule(
            FaultRule::new("serve.dispatch", FaultKind::Kill)
                .p(1.0)
                .seed(7)
                .max(2),
        );
        let pool = Arc::new(Pool::with_fault_plan(Topology::domains(2, 1), 0, plan));
        let server = Server::on_pool(pool, ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(
            h.wait_timeout(Duration::from_secs(30)),
            Some(Outcome::Completed),
            "a killed dispatcher must not strand admitted requests"
        );
        assert!(
            server.dispatcher_restarts() >= 2,
            "restarts: {}",
            server.dispatcher_restarts()
        );
        server.shutdown();
    }

    #[test]
    fn panicking_dispatcher_restarts_in_place() {
        use htvm_core::{FaultKind, FaultPlan, FaultRule, Topology};
        let plan = FaultPlan::new().rule(
            FaultRule::new("serve.dispatch", FaultKind::Panic)
                .p(1.0)
                .seed(11)
                .max(3),
        );
        let pool = Arc::new(Pool::with_fault_plan(Topology::domains(2, 1), 0, plan));
        let server = Server::on_pool(pool, ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(
            h.wait_timeout(Duration::from_secs(30)),
            Some(Outcome::Completed)
        );
        assert!(server.dispatcher_restarts() >= 3);
        server.shutdown();
    }

    #[test]
    fn injected_worker_fault_is_typed_with_its_site() {
        use htvm_core::{FaultKind, FaultPlan, FaultRule, Topology};
        // Every body hit once: the fault surfaces as a typed Failed
        // naming the injection site, not an opaque panic.
        let plan = FaultPlan::new().rule(
            FaultRule::new("worker.body", FaultKind::Panic)
                .p(1.0)
                .seed(3)
                .max(1),
        );
        let pool = Arc::new(Pool::with_fault_plan(Topology::domains(2, 1), 0, plan));
        let server = Server::on_pool(pool, ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        match h.wait() {
            Outcome::Failed(f) => assert_eq!(f.site, "worker.body"),
            other => panic!("expected Failed, got {other:?}"),
        }
        let ok = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(ok.wait(), Outcome::Completed, "fault capped at max=1");
        server.shutdown();
    }
}
