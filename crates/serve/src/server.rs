//! The serving front-end: tenants, admission, weighted dispatch,
//! shedding, and teardown.
//!
//! # Architecture
//!
//! ```text
//! client threads                dispatcher thread            pool workers
//! ──────────────                ─────────────────            ────────────
//! TenantHandle::submit ──► AdmissionQueue (bounded, per ──► Wdrr::round ──►
//!   │ QueueFull/TenantClosed     tenant; typed backpressure)   │
//!   ▼                                                          ▼
//! ResponseHandle                 shed overload /        Pool::spawn_with
//!   wait / cancel                drain closed tenants    (token + tag +
//!                                                         home domain)
//! ```
//!
//! Each tenant owns a long-lived subtree of the machine: a home
//! locality domain its requests are homed to (`SpawnOpts::domain`), a
//! [`htvm_core::PoolTag`] slicing the pool's counters per tenant, and
//! a weight feeding the [`Wdrr`] dispatcher. A single
//! dispatcher thread moves requests from admission queues into the
//! pool's injectors; the pool itself stays a pure work-stealing
//! substrate — the serving policy (fairness, shedding, cancellation)
//! lives entirely above it.
//!
//! # Exactly-once resolution
//!
//! Every admitted request resolves exactly once, through the
//! [`CancelToken`] CAS (see `htvm_core::cancel`):
//!
//! * **Completed/Panicked** — the pool's grain-boundary checkpoint
//!   claimed the token; a drop guard inside the job body resolves the
//!   outcome on the worker (covering panics and the cancelled-drop
//!   path via `std::thread::panicking` / `was_claimed`).
//! * **Cancelled** — `cancel()` (or deadline expiry at the checkpoint)
//!   won the CAS; the hook armed at admission resolves the outcome
//!   from whichever thread won (a cancel that lands before the hook is
//!   armed resolves when the arming call runs it immediately).
//! * **Rejected** — the dispatcher itself claims the token before
//!   shedding (overload, tenant close, shutdown): if the claim loses,
//!   a concurrent cancel already resolved the request and the shed
//!   becomes a no-op.
//!
//! In-flight accounting never depends on who wins: the drop guard that
//! decrements `in_flight` travels *inside* the job closure, so it runs
//! on a worker whether the body executes, panics, or is dropped unrun.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use htvm_core::{
    AdmissionQueue, AdmitError, CancelToken, DomainId, Htvm, Pool, PoolTag, SpawnOpts, TagStats,
    WorkerCtx,
};
use litlx::NativeParcel;
use parking_lot::{Condvar, Mutex};

use crate::autopilot::{Autopilot, AutopilotConfig, Bubble, BubbleTenant};
use crate::drr::Wdrr;
use crate::request::{Outcome, RejectReason, ReqState, ResponseHandle, SubmitError};

/// Server-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Deficit credit per unit weight per dispatch round.
    pub quantum: u64,
    /// Maximum requests dispatched into the pool but not yet finished;
    /// the dispatcher stalls (not the clients) when reached.
    pub max_in_flight: usize,
    /// Admission-queue capacity for tenants that don't override it.
    pub default_queue_capacity: usize,
    /// Shed watermark: when total queued requests across tenants
    /// exceed this, the dispatcher sheds newest-first from the
    /// lowest-weight backlogged tenant until back under.
    pub max_queued_total: usize,
    /// How long the dispatcher sleeps when there is nothing to do
    /// (submissions and completions also wake it explicitly).
    pub idle_wait: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            quantum: 4,
            max_in_flight: 64,
            default_queue_capacity: 64,
            max_queued_total: 1024,
            idle_wait: Duration::from_micros(200),
        }
    }
}

/// Per-tenant registration knobs.
#[derive(Debug, Clone, Default)]
pub struct TenantConfig {
    /// Relative dispatch weight (clamped to ≥ 1).
    pub weight: u64,
    /// Admission-queue bound; defaults to
    /// [`ServerConfig::default_queue_capacity`].
    pub queue_capacity: Option<usize>,
    /// Initial home locality domain for the tenant's bubble; defaults
    /// to `tenant_id % num_domains` (round-robin placement). The pin is
    /// *initial* only: the tenant's [`Bubble`] can be re-pinned or
    /// burst at runtime (by the [`Autopilot`] or by hand).
    pub home: Option<DomainId>,
}

impl TenantConfig {
    /// A tenant with the given weight and defaults otherwise.
    pub fn weighted(weight: u64) -> Self {
        Self {
            weight,
            ..Self::default()
        }
    }
}

/// Counters a tenant accumulates over its lifetime. Conservation: every
/// submission ends in exactly one bucket —
/// `submitted == rejected_full + completed + panicked + cancelled +
/// shed + closed_rejects + shutdown_rejects + still_pending`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Submissions offered (admitted or not).
    pub submitted: u64,
    /// Refused at the admission boundary (queue full).
    pub rejected_full: u64,
    /// Actions that ran to completion.
    pub completed: u64,
    /// Actions that ran and panicked (contained).
    pub panicked: u64,
    /// Requests resolved cancelled (explicit or deadline).
    pub cancelled: u64,
    /// Requests shed under overload ([`RejectReason::Overload`]).
    pub shed: u64,
    /// Requests rejected because the tenant closed — refused at submit
    /// time or drained from the queue by the dispatcher.
    pub closed_rejects: u64,
    /// Queued requests rejected when the server shut down.
    pub shutdown_rejects: u64,
}

impl TenantStats {
    /// Requests that reached a terminal outcome or were refused.
    pub fn settled(&self) -> u64 {
        self.rejected_full
            + self.completed
            + self.panicked
            + self.cancelled
            + self.shed
            + self.closed_rejects
            + self.shutdown_rejects
    }
}

#[derive(Default)]
struct TenantCounters {
    submitted: AtomicU64,
    rejected_full: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    closed_rejects: AtomicU64,
    shutdown_rejects: AtomicU64,
}

/// A request sitting in an admission queue.
struct Queued {
    action: Box<dyn FnOnce(&WorkerCtx) + Send>,
    cost: u64,
    token: CancelToken,
    state: Arc<ReqState>,
}

struct TenantShared {
    id: usize,
    weight: u64,
    /// The tenant's movable home pin, read at *dispatch* time — a
    /// migration moves every not-yet-dispatched request of the subtree.
    bubble: Arc<Bubble>,
    queue: AdmissionQueue<Queued>,
    tag: PoolTag,
    counters: Arc<TenantCounters>,
}

struct ServerInner {
    pool: Arc<Pool>,
    cfg: ServerConfig,
    /// Slot index == tenant id; `None` slots are retired tenants
    /// (slots are reused by later registrations).
    tenants: Mutex<Vec<Option<Arc<TenantShared>>>>,
    in_flight: AtomicUsize,
    shutdown: AtomicBool,
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
}

impl ServerInner {
    /// Wake the dispatcher (submission, completion, close, shutdown).
    fn kick(&self) {
        let _g = self.wake_lock.lock();
        self.wake_cv.notify_one();
    }

    fn live_tenants(&self) -> Vec<Arc<TenantShared>> {
        self.tenants.lock().iter().flatten().cloned().collect()
    }
}

/// Decrements `in_flight` when the dispatched job leaves the pool —
/// travelling inside the job closure so it runs on the worker for all
/// three exits (completed, panicked, dropped-cancelled) — and resolves
/// the outcome for the claimed paths.
struct FinishGuard {
    inner: Arc<ServerInner>,
    state: Arc<ReqState>,
    counters: Arc<TenantCounters>,
    token: CancelToken,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        if self.token.was_claimed() {
            // The body ran (the claim CAS won, so the cancel hook can
            // never fire): this guard owns the outcome.
            if std::thread::panicking() {
                self.counters.panicked.fetch_add(1, Ordering::Relaxed);
                self.state.outcome.put(Outcome::Panicked);
            } else {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                self.state.outcome.put(Outcome::Completed);
            }
        }
        // Cancelled-at-the-checkpoint path: the token's hook already
        // resolved the outcome; only the gauge needs maintenance.
        self.inner.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.inner.kick();
    }
}

/// A handle to a registered tenant. Dropping the handle closes the
/// tenant (queued requests resolve `Rejected(TenantClosed)`; in-flight
/// requests finish normally).
pub struct TenantHandle {
    shared: Arc<TenantShared>,
    inner: Arc<ServerInner>,
    closed_by_handle: bool,
}

impl TenantHandle {
    /// The tenant's id (its dispatcher key).
    pub fn id(&self) -> usize {
        self.shared.id
    }

    /// The tenant's dispatch weight.
    pub fn weight(&self) -> u64 {
        self.shared.weight
    }

    /// The tenant's current home domain, or `None` while its bubble is
    /// burst (requests dispatch unaffine).
    pub fn home(&self) -> Option<DomainId> {
        self.shared.bubble.domain()
    }

    /// The tenant's bubble handle — re-pin ([`Bubble::set_domain`]) or
    /// release ([`Bubble::burst`]) the whole subtree at runtime.
    pub fn bubble(&self) -> &Arc<Bubble> {
        &self.shared.bubble
    }

    /// Submit a parcel with a fresh cancellation token.
    pub fn submit(&self, parcel: NativeParcel) -> Result<ResponseHandle, SubmitError> {
        self.submit_with_token(parcel, CancelToken::new())
    }

    /// Submit a parcel that auto-cancels at `deadline` (observed at the
    /// pool's grain boundary — an expired request queued behind a long
    /// backlog resolves `Cancelled` instead of running).
    pub fn submit_with_deadline(
        &self,
        parcel: NativeParcel,
        deadline: Instant,
    ) -> Result<ResponseHandle, SubmitError> {
        self.submit_with_token(parcel, CancelToken::with_deadline(deadline))
    }

    /// Submit a parcel guarded by a caller-supplied token — e.g. a
    /// `child()` of a tenant-wide token, so cancelling the parent fans
    /// out to every outstanding request of the subtree.
    ///
    /// Each token must guard **at most one** submission: the token's
    /// cancelled-hook slot holds one hook, so a second submission with
    /// the same token silently disarms the first request's cancelled
    /// resolution and can hang its `wait()`. To tie many requests to
    /// one cancellation scope, submit a fresh [`CancelToken::child`]
    /// of the shared token per request (as above), never the shared
    /// token itself.
    pub fn submit_with_token(
        &self,
        parcel: NativeParcel,
        token: CancelToken,
    ) -> Result<ResponseHandle, SubmitError> {
        let counters = &self.shared.counters;
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        let state = ReqState::new();
        let cost = parcel.cost();
        let queued = Queued {
            action: parcel.into_action(),
            cost,
            token: token.clone(),
            state: state.clone(),
        };
        match self.shared.queue.try_push(queued) {
            Ok(()) => {
                // Arm the cancelled resolution only once the request is
                // admitted, so a rejected submission never leaves a
                // hook on the caller's token. Exactly-once still holds
                // against everything the dispatcher may already have
                // done with the queued request: if the token resolved
                // cancelled first the hook runs immediately (here), and
                // if it was claimed (dispatched, or shed via the
                // rejection claim) the hook is dropped unrun.
                {
                    let state = state.clone();
                    let counters = counters.clone();
                    token.on_cancelled(move || {
                        counters.cancelled.fetch_add(1, Ordering::Relaxed);
                        state.outcome.put(Outcome::Cancelled);
                    });
                }
                self.inner.kick();
                Ok(ResponseHandle { state, token })
            }
            Err(AdmitError::Full(_)) => {
                counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(AdmitError::Closed(_)) => {
                counters.closed_rejects.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::TenantClosed)
            }
        }
    }

    /// Current admission-queue depth.
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Lifetime counters (see [`TenantStats`] for the conservation
    /// invariant).
    pub fn stats(&self) -> TenantStats {
        let c = &self.shared.counters;
        TenantStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected_full: c.rejected_full.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            closed_rejects: c.closed_rejects.load(Ordering::Relaxed),
            shutdown_rejects: c.shutdown_rejects.load(Ordering::Relaxed),
        }
    }

    /// This tenant's slice of the pool's execution counters (jobs whose
    /// bodies ran / were dropped cancelled at the grain boundary).
    pub fn pool_slice(&self) -> TagStats {
        self.shared.tag.stats()
    }

    /// Stop admitting (idempotent). Queued requests resolve
    /// `Rejected(TenantClosed)` at the dispatcher's next pass;
    /// in-flight requests finish normally; the tenant's slot is
    /// retired once drained.
    pub fn close(&self) {
        self.shared.queue.close();
        self.inner.kick();
    }
}

impl Drop for TenantHandle {
    fn drop(&mut self) {
        if self.closed_by_handle {
            self.close();
        }
    }
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantHandle")
            .field("id", &self.id())
            .field("weight", &self.weight())
            .field("queued", &self.queued())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The multi-tenant serving front-end (see the [module docs](self)).
pub struct Server {
    inner: Arc<ServerInner>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Serve on `htvm`'s pool — the pool handle outlives any single
    /// batch run, which is exactly what a server needs.
    pub fn new(htvm: &Htvm, cfg: ServerConfig) -> Self {
        Self::on_pool(htvm.pool(), cfg)
    }

    /// Serve on an explicit pool handle.
    pub fn on_pool(pool: Arc<Pool>, cfg: ServerConfig) -> Self {
        let inner = Arc::new(ServerInner {
            pool,
            cfg,
            tenants: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            wake_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
        });
        let dispatcher = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("htvm-serve-dispatch".into())
                .spawn(move || dispatcher_loop(inner))
                .expect("spawn dispatcher thread")
        };
        Self {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// Register a tenant; its id is the smallest retired slot (ids are
    /// reused after teardown).
    ///
    /// # Panics
    /// Panics if called after [`Server::shutdown`], or if
    /// `cfg.home` is out of range for the pool's topology.
    pub fn register_tenant(&self, cfg: TenantConfig) -> TenantHandle {
        let nd = self.inner.pool.num_domains();
        let capacity = cfg
            .queue_capacity
            .unwrap_or(self.inner.cfg.default_queue_capacity);
        let mut tenants = self.inner.tenants.lock();
        // Checked under the tenants lock, against a flag that is also
        // *stored* under it (see `Server::shutdown`): a registration
        // that passes this check inserted its tenant before the flag
        // was set, so the dispatcher's final drain pass — which
        // snapshots the tenants under the lock after observing the
        // flag — is guaranteed to see and reject it. No tenant can
        // slip in behind the final drain and strand its requests.
        assert!(
            !self.inner.shutdown.load(Ordering::SeqCst),
            "register_tenant on a shut-down server"
        );
        let id = tenants
            .iter()
            .position(Option::is_none)
            .unwrap_or(tenants.len());
        let home = cfg.home.unwrap_or(DomainId((id % nd) as u64));
        assert!(
            (home.0 as usize) < nd,
            "{home} out of range for a {nd}-domain pool"
        );
        let shared = Arc::new(TenantShared {
            id,
            weight: cfg.weight.max(1),
            bubble: Bubble::pinned(home),
            queue: AdmissionQueue::new(capacity),
            tag: PoolTag::new(),
            counters: Arc::new(TenantCounters::default()),
        });
        if id == tenants.len() {
            tenants.push(Some(shared.clone()));
        } else {
            tenants[id] = Some(shared.clone());
        }
        drop(tenants);
        self.inner.kick();
        TenantHandle {
            shared,
            inner: self.inner.clone(),
            closed_by_handle: true,
        }
    }

    /// The pool this server dispatches into.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.inner.pool
    }

    /// Start a BubbleSched-style [`Autopilot`] over this server: a
    /// controller thread that samples the pool's steal/queue/occupancy
    /// signals each tick and steers tenant bubbles (migrate / burst /
    /// gang) and the elastic worker set (grow / retire). Several
    /// autopilots over one server would fight; start at most one.
    pub fn autopilot(&self, cfg: AutopilotConfig) -> Autopilot {
        let inner = self.inner.clone();
        Autopilot::start(inner.pool.clone(), cfg, move || {
            inner
                .live_tenants()
                .iter()
                .map(|t| BubbleTenant {
                    id: t.id,
                    bubble: t.bubble.clone(),
                    executed: t.tag.stats().executed,
                })
                .collect()
        })
    }

    /// Requests dispatched into the pool but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Total requests currently sitting in admission queues.
    pub fn queued_total(&self) -> usize {
        self.inner
            .live_tenants()
            .iter()
            .map(|t| t.queue.len())
            .sum()
    }

    /// Live (registered, not yet retired) tenants.
    pub fn tenant_count(&self) -> usize {
        self.inner.live_tenants().len()
    }

    /// Block (politely yielding) until no request is queued or in
    /// flight, or `timeout` elapses; returns whether the server
    /// drained. Unlike `Pool::wait_quiescent` this only covers *this
    /// server's* requests, so it is safe alongside other pool users.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.queued_total() != 0 || self.in_flight() != 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Stop the dispatcher (idempotent): close every tenant, resolve
    /// all queued requests `Rejected(ServerShutdown)`, and join the
    /// dispatcher thread. In-flight requests finish normally on the
    /// pool.
    pub fn shutdown(&self) {
        {
            // Store the flag under the tenants lock so it serializes
            // against `register_tenant`'s check: every registration
            // either completes before this store (and is seen by the
            // dispatcher's final drain) or observes the flag and
            // panics. Without the lock a registration could pass the
            // check yet insert after the final drain's snapshot,
            // stranding its requests forever.
            let _tenants = self.inner.tenants.lock();
            self.inner.shutdown.store(true, Ordering::SeqCst);
        }
        self.inner.kick();
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tenants", &self.tenant_count())
            .field("queued", &self.queued_total())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// Resolve a popped-but-never-dispatched request as `Rejected(reason)`.
/// The dispatcher must *claim* the token first: if the claim loses, a
/// concurrent cancel (or deadline) already resolved the request and
/// the shed is a no-op — exactly-once by the same CAS as everything
/// else.
fn resolve_rejected(q: Queued, reason: RejectReason, bucket: &AtomicU64) {
    if q.token.try_claim() {
        bucket.fetch_add(1, Ordering::Relaxed);
        q.state.outcome.put(Outcome::Rejected(reason));
    }
}

fn dispatcher_loop(inner: Arc<ServerInner>) {
    let mut drr = Wdrr::new(inner.cfg.quantum);
    loop {
        let shutting_down = inner.shutdown.load(Ordering::SeqCst);
        let snapshot = inner.live_tenants();

        // Retire closed tenants: drain their queues with a typed
        // rejection, then free the slot.
        for t in &snapshot {
            if shutting_down {
                t.queue.close();
            }
            if t.queue.is_closed() {
                for q in t.queue.drain() {
                    let (reason, bucket) = if shutting_down {
                        (RejectReason::ServerShutdown, &t.counters.shutdown_rejects)
                    } else {
                        (RejectReason::TenantClosed, &t.counters.closed_rejects)
                    };
                    resolve_rejected(q, reason, bucket);
                }
                drr.remove(t.id);
                inner.tenants.lock()[t.id] = None;
            }
        }
        if shutting_down {
            return;
        }
        let live: Vec<Arc<TenantShared>> = snapshot
            .into_iter()
            .filter(|t| !t.queue.is_closed())
            .collect();

        // Shed overload: newest work from the lowest-weight backlogged
        // tenant goes first, until back under the watermark.
        loop {
            let total: usize = live.iter().map(|t| t.queue.len()).sum();
            if total <= inner.cfg.max_queued_total {
                break;
            }
            let Some(t) = live
                .iter()
                .filter(|t| !t.queue.is_empty())
                .min_by_key(|t| t.weight)
            else {
                break;
            };
            match t.queue.pop_newest() {
                Some(q) => resolve_rejected(q, RejectReason::Overload, &t.counters.shed),
                None => continue,
            }
        }

        // Weighted dispatch under the in-flight cap. `drr` may still
        // hold keys absent from `by_id`: a tenant that closed between
        // the retire pass above and the `live` filter keeps its slot
        // until the next pass retires it, so the round's closures must
        // treat an unknown key as idle rather than index out of range.
        let mut by_id: Vec<Option<&Arc<TenantShared>>> = Vec::new();
        for t in &live {
            if by_id.len() <= t.id {
                by_id.resize(t.id + 1, None);
            }
            by_id[t.id] = Some(t);
            drr.ensure(t.id, t.weight);
        }
        let capacity = inner
            .cfg
            .max_in_flight
            .saturating_sub(inner.in_flight.load(Ordering::SeqCst)) as u64;
        let dispatched = if capacity == 0 {
            0
        } else {
            let inner_ref = &inner;
            drr.round(
                capacity,
                |k| {
                    by_id
                        .get(k)
                        .copied()
                        .flatten()
                        .and_then(|t| t.queue.peek(|q| q.cost))
                },
                |k| {
                    if let Some(t) = by_id.get(k).copied().flatten() {
                        dispatch_one(inner_ref, t);
                    }
                },
            )
        };

        if dispatched == 0 {
            // Nothing moved this pass: sleep until a kick (submit,
            // completion, close, shutdown) or the idle timeout — the
            // timeout bounds the staleness of any kick that raced in
            // between our snapshot and the wait.
            let mut g = inner.wake_lock.lock();
            if !inner.shutdown.load(Ordering::SeqCst) {
                inner.wake_cv.wait_for(&mut g, inner.cfg.idle_wait);
            }
        }
    }
}

/// Pop one request from `t` and hand it to the pool with the full
/// envelope (home domain, token, tag).
fn dispatch_one(inner: &Arc<ServerInner>, t: &Arc<TenantShared>) {
    let Some(q) = t.queue.pop() else {
        return;
    };
    if q.token.is_cancelled() {
        // Already resolved by the cancel hook while queued; nothing to
        // dispatch and the in-flight gauge was never touched.
        return;
    }
    inner.in_flight.fetch_add(1, Ordering::SeqCst);
    let guard = FinishGuard {
        inner: inner.clone(),
        state: q.state,
        counters: t.counters.clone(),
        token: q.token.clone(),
    };
    let action = q.action;
    inner.pool.spawn_with(
        SpawnOpts {
            // Resolved at dispatch time: a bubble migration moves every
            // not-yet-dispatched request; a burst bubble goes unaffine.
            domain: t.bubble.domain(),
            token: Some(q.token),
            tag: Some(t.tag.clone()),
        },
        move |ctx| {
            let _guard = guard;
            action(ctx);
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_core::Topology;

    fn quick_server(cfg: ServerConfig) -> Server {
        Server::on_pool(Arc::new(Pool::with_topology(Topology::domains(2, 1))), cfg)
    }

    #[test]
    fn submit_completes_and_counts() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let handles: Vec<_> = (0..20)
            .map(|_| tenant.submit(NativeParcel::new(|_| {})).unwrap())
            .collect();
        for h in &handles {
            assert_eq!(h.wait(), Outcome::Completed);
        }
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.submitted, 20);
        assert_eq!(stats.completed, 20);
        assert_eq!(stats.settled(), 20);
        assert_eq!(tenant.pool_slice().executed, 20);
    }

    #[test]
    fn queue_full_is_typed_backpressure() {
        // A paused pool can't drain, so the 2-slot queue must overflow.
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            queue_capacity: Some(2),
            home: None,
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        // Wait until the blocker is actually in flight so the queue
        // stays full behind it.
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let mut accepted = Vec::new();
        let mut full = 0;
        for _ in 0..20 {
            match tenant.submit(NativeParcel::new(|_| {})) {
                Ok(h) => accepted.push(h),
                Err(SubmitError::QueueFull) => full += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(full > 0, "bounded queue must refuse at capacity");
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        for h in &accepted {
            assert_eq!(h.wait(), Outcome::Completed);
        }
        assert_eq!(tenant.stats().rejected_full, full);
    }

    #[test]
    fn cancel_while_queued_resolves_cancelled() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        let victim = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert!(victim.cancel(), "queued request is cancellable");
        assert_eq!(victim.wait(), Outcome::Cancelled);
        assert!(!victim.cancel(), "second cancel is a no-op");
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn expired_deadline_resolves_cancelled() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant
            .submit_with_deadline(
                NativeParcel::new(|_| panic!("must not run")),
                Instant::now() - Duration::from_millis(1),
            )
            .unwrap();
        assert_eq!(h.wait(), Outcome::Cancelled);
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().panicked, 0);
    }

    #[test]
    fn panicking_action_resolves_panicked() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let h = tenant
            .submit(NativeParcel::new(|_| panic!("injected request failure")))
            .unwrap();
        assert_eq!(h.wait(), Outcome::Panicked);
        let ok = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(ok.wait(), Outcome::Completed, "worker survived");
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert_eq!(tenant.stats().panicked, 1);
    }

    #[test]
    fn close_rejects_queued_requests_and_retires_the_slot() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let stranded = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        tenant.close();
        assert!(matches!(
            tenant.submit(NativeParcel::new(|_| {})),
            Err(SubmitError::TenantClosed)
        ));
        assert_eq!(
            stranded.wait(),
            Outcome::Rejected(RejectReason::TenantClosed)
        );
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed, "in-flight unaffected");
        assert!(server.wait_idle(Duration::from_secs(10)));
        // The slot retires and is reused by the next registration.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.tenant_count() != 0 {
            assert!(Instant::now() < deadline, "tenant never retired");
            std::thread::yield_now();
        }
        let next = server.register_tenant(TenantConfig::weighted(2));
        assert_eq!(next.id(), tenant.id(), "retired slot is reused");
    }

    #[test]
    fn dispatcher_survives_tenants_closing_mid_pass() {
        // Regression: a tenant closing between the dispatcher's retire
        // check and its live filter kept a `Wdrr` key with no `by_id`
        // entry, and the round's closures indexed out of bounds —
        // killing the dispatcher and hanging every later request. Churn
        // the two shapes that exposed it (the only tenant closes →
        // `by_id` is empty; the highest-id tenant closes → `by_id` is
        // short) and then prove the dispatcher is still alive.
        let server = quick_server(ServerConfig::default());
        let mut handles = Vec::new();
        let mut persistent = None;
        for round in 0..200 {
            if round == 100 {
                // From here on the churned tenant gets id 1: closing it
                // leaves a key above `by_id.len()` while id 0 stays live.
                persistent = Some(server.register_tenant(TenantConfig::weighted(1)));
            }
            let tenant = server.register_tenant(TenantConfig::weighted(1));
            for _ in 0..3 {
                handles.push(tenant.submit(NativeParcel::new(|_| {})).unwrap());
            }
            tenant.close();
        }
        // A dead dispatcher can't dispatch: a fresh tenant's request
        // would never resolve. Bounded wait so the failure is a panic,
        // not a hung test.
        let fresh = server.register_tenant(TenantConfig::weighted(1));
        let probe = fresh.submit(NativeParcel::new(|_| {})).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while probe.try_outcome().is_none() {
            assert!(
                Instant::now() < deadline,
                "dispatcher died during tenant churn"
            );
            std::thread::yield_now();
        }
        assert_eq!(probe.wait(), Outcome::Completed);
        // Every churned request still settled exactly once (Completed
        // or Rejected(TenantClosed), depending on when its tenant's
        // close landed).
        for h in &handles {
            while h.try_outcome().is_none() {
                assert!(Instant::now() < deadline, "churned request never settled");
                std::thread::yield_now();
            }
            assert!(matches!(
                h.wait(),
                Outcome::Completed | Outcome::Rejected(RejectReason::TenantClosed)
            ));
        }
        drop(persistent);
    }

    #[test]
    fn rejected_submission_does_not_arm_the_callers_token() {
        // Regression: the cancel hook used to be armed before admission,
        // so a QueueFull/TenantClosed rejection left it on the caller's
        // token — a later cancel of that token (e.g. a tenant-wide
        // parent fanning out) then counted a `cancelled` for a request
        // already counted `rejected_full`.
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            queue_capacity: Some(1),
            home: None,
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let queued = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        let rejected_token = CancelToken::new();
        assert!(matches!(
            tenant.submit_with_token(NativeParcel::new(|_| {}), rejected_token.clone()),
            Err(SubmitError::QueueFull)
        ));
        // The caller still owns the token; cancelling it later must not
        // resolve (or count) anything for the rejected submission.
        rejected_token.cancel();
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        assert_eq!(queued.wait(), Outcome::Completed);
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected_full, 1);
        assert_eq!(
            stats.cancelled, 0,
            "rejected submission was counted cancelled"
        );
        assert_eq!(stats.settled(), stats.submitted);
    }

    #[test]
    fn submit_after_close_lands_in_closed_rejects() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let done = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        assert_eq!(done.wait(), Outcome::Completed);
        tenant.close();
        assert!(matches!(
            tenant.submit(NativeParcel::new(|_| {})),
            Err(SubmitError::TenantClosed)
        ));
        assert!(server.wait_idle(Duration::from_secs(10)));
        let stats = tenant.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(
            stats.closed_rejects, 1,
            "submit-time close reject uncounted"
        );
        assert_eq!(stats.settled(), stats.submitted, "conservation violated");
    }

    #[test]
    fn overload_sheds_lowest_weight_newest_first() {
        // Paused drain (max_in_flight 1 + blocker) and a tiny watermark
        // force the shed path deterministically.
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            max_queued_total: 4,
            ..ServerConfig::default()
        });
        let heavy = server.register_tenant(TenantConfig::weighted(8));
        let light = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = heavy
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(light.submit(NativeParcel::new(|_| {})).unwrap());
            handles.push(heavy.submit(NativeParcel::new(|_| {})).unwrap());
        }
        // Wait for the dispatcher to act on the over-watermark queues.
        let deadline = Instant::now() + Duration::from_secs(10);
        while light.stats().shed == 0 {
            assert!(Instant::now() < deadline, "nothing was shed");
            std::thread::yield_now();
        }
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        let outcomes: Vec<Outcome> = handles.iter().map(|h| h.wait()).collect();
        assert!(outcomes.contains(&Outcome::Rejected(RejectReason::Overload)));
        assert!(server.wait_idle(Duration::from_secs(10)));
        assert!(
            light.stats().shed >= heavy.stats().shed,
            "lowest weight sheds first: light={:?} heavy={:?}",
            light.stats(),
            heavy.stats()
        );
    }

    #[test]
    fn shutdown_rejects_queued_and_joins() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let stranded = tenant.submit(NativeParcel::new(|_| {})).unwrap();
        gate.store(true, Ordering::Release);
        server.shutdown();
        assert_eq!(
            stranded.wait(),
            Outcome::Rejected(RejectReason::ServerShutdown)
        );
        assert_eq!(blocker.wait(), Outcome::Completed);
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn bubble_moves_are_resolved_at_dispatch_time() {
        let server = quick_server(ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig {
            weight: 1,
            queue_capacity: None,
            home: Some(DomainId(0)),
        });
        assert_eq!(tenant.home(), Some(DomainId(0)));
        let pool = server.pool().clone();
        let spawns_at = |pool: &Pool| pool.stats().domain_spawns;

        let base = spawns_at(&pool);
        tenant.submit(NativeParcel::new(|_| {})).unwrap().wait();
        let after_pinned = spawns_at(&pool);
        assert_eq!(after_pinned[0], base[0] + 1, "pinned dispatch homes to 0");

        // Re-pin: the *next* dispatch follows the bubble, no resubmit.
        tenant.bubble().set_domain(DomainId(1));
        assert_eq!(tenant.home(), Some(DomainId(1)));
        tenant.submit(NativeParcel::new(|_| {})).unwrap().wait();
        let after_moved = spawns_at(&pool);
        assert_eq!(
            after_moved[1],
            after_pinned[1] + 1,
            "migrated dispatch homes to 1"
        );

        // Burst: dispatches go unaffine — no domain-spawn record at all.
        tenant.bubble().burst();
        assert_eq!(tenant.home(), None);
        tenant.submit(NativeParcel::new(|_| {})).unwrap().wait();
        let after_burst = spawns_at(&pool);
        assert_eq!(
            after_burst.iter().sum::<u64>(),
            after_moved.iter().sum::<u64>(),
            "burst dispatch is unaffine"
        );
        assert!(server.wait_idle(Duration::from_secs(10)));
    }

    #[test]
    fn autopilot_grows_the_pool_under_queue_pressure_and_retires_when_idle() {
        use crate::autopilot::AutopilotConfig;
        // 2 domains × 1 worker, with one vacant headroom slot each.
        let pool = Arc::new(Pool::with_elastic(Topology::domains(2, 1), 1));
        let server = Server::on_pool(pool.clone(), ServerConfig::default());
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let pilot = server.autopilot(AutopilotConfig {
            interval: Duration::from_millis(1),
            ..AutopilotConfig::default()
        });
        assert_eq!(pool.active_workers(), 2);

        // Both active workers block; a backlog piles up in the pool's
        // queues behind them until the controller must grow.
        let gate = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let g = gate.clone();
            handles.push(
                tenant
                    .submit(NativeParcel::new(move |_| {
                        while !g.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                    }))
                    .unwrap(),
            );
        }
        for _ in 0..40 {
            handles.push(tenant.submit(NativeParcel::new(|_| {})).unwrap());
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool.stats().grows == 0 {
            assert!(Instant::now() < deadline, "autopilot never grew the pool");
            std::thread::yield_now();
        }
        gate.store(true, Ordering::Release);
        for h in &handles {
            assert_eq!(h.wait(), Outcome::Completed);
        }
        assert!(server.wait_idle(Duration::from_secs(10)));

        // Idle streak: the controller hands the extra workers back.
        while pool.stats().retires == 0 {
            assert!(Instant::now() < deadline, "autopilot never retired");
            std::thread::yield_now();
        }
        let stats = pilot.stats();
        assert!(stats.grows >= 1, "{stats:?}");
        pilot.stop();
        pilot.stop(); // idempotent
        assert!(pilot.stats().retires >= 1 || pool.stats().retires >= 1);
    }

    #[test]
    fn tenant_wide_token_fans_out_to_children() {
        let server = quick_server(ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        });
        let tenant = server.register_tenant(TenantConfig::weighted(1));
        let root = CancelToken::new();
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = tenant
            .submit(NativeParcel::new(move |_| {
                while !g.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .unwrap();
        while server.in_flight() == 0 {
            std::thread::yield_now();
        }
        let children: Vec<_> = (0..4)
            .map(|_| {
                tenant
                    .submit_with_token(NativeParcel::new(|_| {}), root.child())
                    .unwrap()
            })
            .collect();
        root.cancel();
        gate.store(true, Ordering::Release);
        assert_eq!(blocker.wait(), Outcome::Completed);
        for c in &children {
            assert_eq!(
                c.wait(),
                Outcome::Cancelled,
                "queued children observe the parent at the grain boundary"
            );
        }
    }
}
