//! # htvm-check — deterministic schedule exploration
//!
//! A miniature loom: run a small concurrent scenario under a virtual
//! scheduler that serializes its threads onto one baton and picks every
//! next step with a seeded PRNG. The interleaving — and so every outcome
//! of a synchronization bug — becomes a pure function of the seed:
//! exploration is just trying many seeds, and any failure ships with the
//! one integer needed to reproduce it exactly.
//!
//! Three pieces:
//!
//! * [`prim`] — instrumented drop-ins for atomics, fences, mutexes and
//!   condvars. `htvm-core` swaps these in behind its `check` feature (see
//!   its `chk` shim module), so the *production* deque/sleeper/SyncSlot
//!   code runs unmodified under the explorer.
//! * [`thread`] — scheduler-aware spawn/join for scenario code.
//! * [`mod@explore`] — the driver: [`explore()`](explore::explore) to search,
//!   [`replay()`](explore::replay) to reproduce a seed,
//!   [`check_corpus()`](explore::check_corpus) for committed regression
//!   corpora.
//!
//! What the explorer covers — and what it doesn't: the baton makes every
//! schedule sequentially consistent, so this finds *interleaving* bugs
//! (lost wakeups, torn check-then-act sequences, double-takes, dropped
//! hand-offs) but not *weak-memory* bugs (missing fences that only
//! reorder on hardware). The fence placement of the Chase–Lev deque is
//! justified by Lê et al. (PPoPP 2013) and exercised by the stress CI;
//! the explorer owns everything above that line. See ARCHITECTURE.md
//! §verification.

#![warn(missing_docs)]

pub mod explore;
pub mod prim;
mod sched;
pub mod thread;

pub use explore::{
    check_corpus, explore, random_seeds, random_seeds_from_env, replay, set_iteration_reset,
    Config, Failure, Report,
};
