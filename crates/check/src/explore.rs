//! The exploration driver: run a scenario closure under many seeded
//! schedules, and replay any single seed exactly.
//!
//! A *scenario* is a plain closure; it runs as virtual thread 0, spawns
//! helpers with [`crate::thread::spawn`], and asserts its invariants with
//! ordinary `assert!` — a panic, a deadlock, or an exhausted step budget
//! all surface as a [`Failure`] carrying the seed that produced the
//! schedule plus the trailing operation trace. Feed the seed back through
//! [`replay`] (or commit it to a corpus checked by [`check_corpus`]) and
//! the identical schedule re-runs: scheduling decisions are a pure
//! function of the seed and the program's runnable sets.
//!
//! Explorations are globally serialized (one at a time per process) so
//! process-wide state shared by the code under test — e.g. the deque's
//! epoch-reclamation registry — sees traffic from exactly one scheduler,
//! keeping replays deterministic even when the test harness runs test
//! functions on parallel threads.

use std::collections::hash_map::RandomState;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once};

use crate::sched::{self, splitmix64, SchedInner};

/// Bounds for one exploration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Schedules to try per [`explore`] call.
    pub iterations: u64,
    /// Per-schedule step budget; exceeding it fails the schedule as a
    /// livelock (or an unexpectedly huge scenario).
    pub max_steps: u64,
    /// Optional bound on involuntary preemptions per schedule: small
    /// values concentrate the search on few-context-switch interleavings,
    /// where most real bugs live (the DPOR-ish knob).
    pub preemption_bound: Option<u32>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            iterations: 1000,
            max_steps: 50_000,
            preemption_bound: None,
        }
    }
}

/// A failing schedule: everything needed to reproduce and diagnose it.
pub struct Failure {
    /// Scenario name as passed to the driver.
    pub scenario: String,
    /// The exact seed to hand to [`replay`].
    pub seed: u64,
    /// Panic message, deadlock report, or step-budget report.
    pub message: String,
    /// Trailing operation trace of the failing schedule.
    pub trace: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario '{}' failed under seed {:#018x}\n  {}",
            self.scenario, self.seed, self.message
        )?;
        writeln!(
            f,
            "  replay locally: htvm_check::replay(\"{}\", &cfg, {:#018x}, scenario)",
            self.scenario, self.seed
        )?;
        write!(f, "  trace (tail):\n{}", self.trace)
    }
}

impl fmt::Debug for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Summary of a successful exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Schedules executed.
    pub iterations: u64,
    /// Total instrumented steps across all schedules.
    pub steps: u64,
}

static EXPLORE_LOCK: Mutex<()> = Mutex::new(());
static QUIET_HOOK: Once = Once::new();
static RESET_HOOK: Mutex<Option<fn()>> = Mutex::new(None);

/// Install a hook run before *every* iteration (and replay), while no
/// virtual thread exists. Scenario crates use this to reset process-wide
/// state in the code under test — e.g. `htvm-core`'s epoch-reclamation
/// registry — so each iteration starts from an identical world and seeds
/// replay exactly. Idempotent; the last hook installed wins.
pub fn set_iteration_reset(hook: fn()) {
    *RESET_HOOK.lock().unwrap_or_else(|p| p.into_inner()) = Some(hook);
}

fn run_reset_hook() {
    let hook = *RESET_HOOK.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(f) = hook {
        f();
    }
}

/// Panics inside virtual threads are captured and reported through
/// [`Failure`]; keep the default hook from spraying expected backtraces
/// (mutant-catching tests *want* failures) while leaving every
/// non-virtual panic's output untouched.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if sched::ctx().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

fn run_once(
    name: &str,
    cfg: &Config,
    seed: u64,
    scenario: &Arc<dyn Fn() + Send + Sync>,
) -> Result<u64, Failure> {
    run_reset_hook();
    let sched = SchedInner::new(seed, cfg.max_steps, cfg.preemption_bound);
    let f = scenario.clone();
    let s2 = sched.clone();
    let root = std::thread::Builder::new()
        .name("vthread-0".to_owned())
        .spawn(move || {
            sched::install(s2.clone(), 0);
            s2.wait_until_scheduled(0);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f())) {
                s2.record_panic(0, payload);
            }
            s2.finish(0);
        })
        .expect("spawn scenario root thread");
    match sched.wait_outcome() {
        Ok(steps) => {
            let _ = root.join();
            Ok(steps)
        }
        Err((message, trace)) => {
            // Leave the failing iteration's threads to free-run teardown;
            // joining could block on a schedule that no longer completes.
            drop(root);
            Err(Failure {
                scenario: name.to_owned(),
                seed,
                message,
                trace,
            })
        }
    }
}

/// Run `cfg.iterations` seeded schedules of `scenario`, deriving each
/// iteration's seed from `base_seed`. Stops at the first failing schedule
/// and returns it; the embedded seed replays that exact schedule.
pub fn explore(
    name: &str,
    cfg: &Config,
    base_seed: u64,
    scenario: impl Fn() + Send + Sync + 'static,
) -> Result<Report, Failure> {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    install_quiet_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    let mut steps = 0;
    for i in 0..cfg.iterations {
        let seed = splitmix64(base_seed.wrapping_add(i));
        steps += run_once(name, cfg, seed, &f)?;
    }
    Ok(Report {
        iterations: cfg.iterations,
        steps,
    })
}

/// Re-run one exact schedule. This is how a failing seed printed by CI is
/// reproduced locally, and how committed regression corpora are checked.
pub fn replay(
    name: &str,
    cfg: &Config,
    seed: u64,
    scenario: impl Fn() + Send + Sync + 'static,
) -> Result<(), Failure> {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    install_quiet_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    run_once(name, cfg, seed, &f).map(|_| ())
}

/// Replay every seed in a committed corpus, stopping at the first failure.
pub fn check_corpus(
    name: &str,
    cfg: &Config,
    seeds: &[u64],
    scenario: impl Fn() + Send + Sync + 'static,
) -> Result<(), Failure> {
    let _serial = EXPLORE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    install_quiet_hook();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(scenario);
    for &seed in seeds {
        run_once(name, cfg, seed, &f)?;
    }
    Ok(())
}

/// `n` fresh seeds from OS entropy (no `rand` dependency: hasher keys are
/// randomized per process). Failing seeds must be printed — and then
/// committed to the corpus.
pub fn random_seeds(n: usize) -> Vec<u64> {
    let state = RandomState::new();
    (0..n)
        .map(|i| {
            let mut h = state.build_hasher();
            h.write_u64(i as u64);
            splitmix64(h.finish())
        })
        .collect()
}

/// Read a seed count from `var` (default `default_n`) and mint that many
/// fresh random seeds — the CI job's "N fresh seeds per run" knob. Set the
/// variable to `0` for fully deterministic runs.
pub fn random_seeds_from_env(var: &str, default_n: usize) -> Vec<u64> {
    let n = std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(default_n);
    random_seeds(n)
}
