//! Scheduler-aware thread spawn/join for scenario code.
//!
//! Inside an exploration, [`spawn`] registers a new *virtual* thread: a
//! real OS thread that only runs while it holds the scheduler's baton.
//! Outside an exploration both functions degrade to plain `std::thread`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::sched;

/// Handle for a thread started with [`spawn`].
pub struct JoinHandle {
    tid: Option<usize>,
    real: Option<std::thread::JoinHandle<()>>,
}

/// Spawn a (virtual, when under the explorer) thread running `f`.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    if let Some((sched, _me)) = sched::ctx_if_scheduled() {
        let tid = sched.register();
        let s2 = sched.clone();
        let real = std::thread::Builder::new()
            .name(format!("vthread-{tid}"))
            .spawn(move || {
                sched::install(s2.clone(), tid);
                s2.wait_until_scheduled(tid);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    s2.record_panic(tid, payload);
                }
                s2.finish(tid);
            })
            .expect("spawn virtual thread");
        // A spawn is itself a schedule point: the child may run first.
        sched::yield_point("thread::spawn");
        return JoinHandle {
            tid: Some(tid),
            real: Some(real),
        };
    }
    JoinHandle {
        tid: None,
        real: Some(std::thread::spawn(f)),
    }
}

impl JoinHandle {
    /// Wait for the thread to finish. Under the explorer this deschedules
    /// the caller until the target's virtual thread completes; panics in
    /// the target were already recorded as the iteration's failure. After
    /// a failure (free-run teardown) the real join is skipped — a waiter
    /// leaked by the failing schedule could hang it.
    pub fn join(mut self) {
        if self.tid.is_some() {
            if let Some(tid) = self.tid {
                sched::join_on(tid);
            }
            if sched::failed_current() {
                // Detach: teardown must not block on leaked threads.
                drop(self.real.take());
                return;
            }
            if let Some(h) = self.real.take() {
                // The virtual thread finished; the OS thread is exiting.
                let _ = h.join();
            }
            return;
        }
        if let Some(h) = self.real.take() {
            if let Err(p) = h.join() {
                resume_unwind(p);
            }
        }
    }
}
