//! Instrumented drop-ins for the primitives the core runtime is built on.
//!
//! Each type wraps the *real* `std::sync` primitive and calls a scheduler
//! yield point immediately before the operation. On a thread that is not
//! under a scheduler (or after an iteration has flipped into free-run
//! teardown) every wrapper degrades to a plain passthrough: same atomic op,
//! same ordering, one thread-local read of overhead. That matters because
//! enabling `htvm-core`'s `check` feature swaps these types in for *every*
//! user of the crate in the build — tests that never touch the explorer
//! must keep their exact pre-instrumentation semantics.
//!
//! Under a scheduler, the baton (one runnable thread at a time, every
//! handoff through a mutex) makes each operation effectively sequentially
//! consistent regardless of its declared `Ordering` — which is exactly the
//! model the explorer explores. See ARCHITECTURE.md §verification.
//!
//! `Mutex`/`Condvar` mirror the vendored `parking_lot` shim's surface
//! (poison-free `lock()`, `Condvar::wait(&mut guard)`), so the core can
//! swap between the two with a one-line `use`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

use crate::sched;

pub use std::sync::atomic::Ordering;

macro_rules! int_atomic {
    ($(#[$meta:meta])* $name:ident, $std:ident, $t:ty) => {
        $(#[$meta])*
        pub struct $name(std::sync::atomic::$std);

        impl $name {
            /// A new atomic holding `v`.
            pub const fn new(v: $t) -> Self {
                Self(std::sync::atomic::$std::new(v))
            }

            /// Instrumented `load`.
            pub fn load(&self, order: Ordering) -> $t {
                sched::yield_point(concat!(stringify!($name), "::load"));
                self.0.load(order)
            }

            /// Instrumented `store`.
            pub fn store(&self, v: $t, order: Ordering) {
                sched::yield_point(concat!(stringify!($name), "::store"));
                self.0.store(v, order)
            }

            /// Instrumented `swap`.
            pub fn swap(&self, v: $t, order: Ordering) -> $t {
                sched::yield_point(concat!(stringify!($name), "::swap"));
                self.0.swap(v, order)
            }

            /// Instrumented `fetch_add`.
            pub fn fetch_add(&self, v: $t, order: Ordering) -> $t {
                sched::yield_point(concat!(stringify!($name), "::fetch_add"));
                self.0.fetch_add(v, order)
            }

            /// Instrumented `fetch_sub`.
            pub fn fetch_sub(&self, v: $t, order: Ordering) -> $t {
                sched::yield_point(concat!(stringify!($name), "::fetch_sub"));
                self.0.fetch_sub(v, order)
            }

            /// Instrumented `compare_exchange`.
            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                sched::yield_point(concat!(stringify!($name), "::compare_exchange"));
                self.0.compare_exchange(current, new, success, failure)
            }

            /// Instrumented `compare_exchange_weak` (never fails spuriously
            /// under the baton — the real op on a quiescent cell).
            pub fn compare_exchange_weak(
                &self,
                current: $t,
                new: $t,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$t, $t> {
                sched::yield_point(concat!(stringify!($name), "::compare_exchange_weak"));
                self.0.compare_exchange_weak(current, new, success, failure)
            }

            /// Exclusive access needs no yield point: `&mut self` proves no
            /// other thread can touch the cell.
            pub fn get_mut(&mut self) -> &mut $t {
                self.0.get_mut()
            }

            /// Unwrap the value.
            pub fn into_inner(self) -> $t {
                self.0.into_inner()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(<$t>::default())
            }
        }
    };
}

int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64, AtomicU64, u64
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize, AtomicUsize, usize
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicIsize`].
    AtomicIsize, AtomicIsize, isize
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicI64`].
    AtomicI64, AtomicI64, i64
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU8`].
    AtomicU8, AtomicU8, u8
);

/// Instrumented [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// A new atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Instrumented `load`.
    pub fn load(&self, order: Ordering) -> bool {
        sched::yield_point("AtomicBool::load");
        self.0.load(order)
    }

    /// Instrumented `store`.
    pub fn store(&self, v: bool, order: Ordering) {
        sched::yield_point("AtomicBool::store");
        self.0.store(v, order)
    }

    /// Instrumented `swap`.
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        sched::yield_point("AtomicBool::swap");
        self.0.swap(v, order)
    }

    /// Instrumented `compare_exchange`.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        sched::yield_point("AtomicBool::compare_exchange");
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Exclusive access; no yield point needed.
    pub fn get_mut(&mut self) -> &mut bool {
        self.0.get_mut()
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> bool {
        self.0.into_inner()
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

/// Instrumented [`std::sync::atomic::AtomicPtr`].
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> AtomicPtr<T> {
    /// A new atomic holding `p`.
    pub const fn new(p: *mut T) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Instrumented `load`.
    pub fn load(&self, order: Ordering) -> *mut T {
        sched::yield_point("AtomicPtr::load");
        self.0.load(order)
    }

    /// Instrumented `store`.
    pub fn store(&self, p: *mut T, order: Ordering) {
        sched::yield_point("AtomicPtr::store");
        self.0.store(p, order)
    }

    /// Instrumented `swap`.
    pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
        sched::yield_point("AtomicPtr::swap");
        self.0.swap(p, order)
    }

    /// Instrumented `compare_exchange`.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        sched::yield_point("AtomicPtr::compare_exchange");
        self.0.compare_exchange(current, new, success, failure)
    }

    /// Exclusive access; no yield point needed.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.0.get_mut()
    }

    /// Unwrap the pointer.
    pub fn into_inner(self) -> *mut T {
        self.0.into_inner()
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Instrumented [`std::sync::atomic::fence`]: a schedule point, then the
/// real fence.
pub fn fence(order: Ordering) {
    sched::yield_point("fence");
    std::sync::atomic::fence(order);
}

/// Instrumented [`std::sync::atomic::compiler_fence`]. Under the explorer
/// this is a schedule point like any other — on x86-64 the deque's
/// steal-side ordering rides on exactly this fence, so the explorer must
/// be allowed to preempt here.
pub fn compiler_fence(order: Ordering) {
    sched::yield_point("compiler_fence");
    std::sync::atomic::compiler_fence(order);
}

fn strip_lock<'a, T: ?Sized>(
    r: Result<std::sync::MutexGuard<'a, T>, std::sync::PoisonError<std::sync::MutexGuard<'a, T>>>,
) -> std::sync::MutexGuard<'a, T> {
    r.unwrap_or_else(|p| p.into_inner())
}

/// Instrumented mutex with the vendored `parking_lot` shim's poison-free
/// surface. Under a scheduler, acquisition is a try-lock loop with
/// deschedule-on-contention so the explorer controls who wins.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releasing it re-readies descheduled contenders.
pub struct MutexGuard<'a, T: ?Sized> {
    m: &'a Mutex<T>,
    g: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, descheduling (under the explorer) on contention.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if sched::in_scheduled() {
            let addr = self as *const Self as *const () as usize;
            loop {
                sched::yield_point("Mutex::lock");
                if !sched::in_scheduled() {
                    break; // failure teardown began mid-acquisition
                }
                match self.inner.try_lock() {
                    Ok(g) => {
                        return MutexGuard {
                            m: self,
                            g: Some(g),
                        }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => sched::block_on_mutex(addr),
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return MutexGuard {
                            m: self,
                            g: Some(p.into_inner()),
                        }
                    }
                }
            }
        }
        MutexGuard {
            m: self,
            g: Some(strip_lock(self.inner.lock())),
        }
    }

    /// Non-blocking acquire (a single schedule point, never deschedules).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        sched::yield_point("Mutex::try_lock");
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                m: self,
                g: Some(g),
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                m: self,
                g: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access; no yield point needed.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.g.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.g.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.g.take() {
            drop(g); // release the real lock first…
                     // …then re-ready anyone the scheduler descheduled on it.
            sched::mutex_released(self.m as *const Mutex<T> as *const () as usize);
        }
    }
}

/// Result of [`Condvar::wait_for`], mirroring the parking_lot shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notify.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Instrumented condvar. Under a scheduler, waiting deschedules the
/// caller as a waiter on this condvar's address and notifying re-readies
/// one (PRNG-chosen) or all waiters — no spurious wakeups, so a schedule
/// is a pure function of the seed.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    /// A new condvar.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wait until notified (or, in free-run teardown, for a bounded
    /// interval so a notifier that already exited cannot hang teardown;
    /// the resulting spurious wakeup is within the condvar contract).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match sched::mode() {
            sched::Mode::Scheduled => {
                let cv_addr = self as *const Self as *const () as usize;
                let m = guard.m;
                let m_addr = m as *const Mutex<T> as *const () as usize;
                // Drop the real lock, then (baton-atomically) re-ready its
                // contenders and deschedule as a waiter on this condvar.
                guard.g = None;
                sched::cv_block(cv_addr, m_addr);
                // Re-acquire through the full instrumented path; the old
                // empty guard is dropped harmlessly by the assignment.
                *guard = m.lock();
            }
            sched::Mode::FreeRun => {
                let g = guard.g.take().expect("guard present");
                let g = match self.inner.wait_timeout(g, Duration::from_millis(50)) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
                guard.g = Some(g);
            }
            sched::Mode::Unscheduled => {
                let g = guard.g.take().expect("guard present");
                let g = self.inner.wait(g).unwrap_or_else(|p| p.into_inner());
                guard.g = Some(g);
            }
        }
    }

    /// Timed wait. Under the explorer there is no virtual clock, so this
    /// degrades to a single schedule point that reports a timeout — i.e.
    /// timed waits become polling, which every caller's predicate loop
    /// already tolerates.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if sched::in_scheduled() {
            let m = guard.m;
            let m_addr = m as *const Mutex<T> as *const () as usize;
            guard.g = None;
            // Release across the schedule point like a real timed wait
            // would, then immediately "time out" and re-acquire.
            sched::mutex_released(m_addr);
            sched::yield_point("Condvar::wait_for");
            *guard = m.lock();
            return WaitTimeoutResult(true);
        }
        let g = guard.g.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => p.into_inner(),
        };
        guard.g = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Notify one waiter (PRNG-chosen under the explorer).
    pub fn notify_one(&self) {
        if sched::in_scheduled() {
            sched::cv_notify(self as *const Self as *const () as usize, false);
        }
        // Always real-notify too: no-op for virtual waiters, needed for
        // free-run teardown and passthrough mode.
        self.inner.notify_one();
    }

    /// Notify all waiters.
    pub fn notify_all(&self) {
        if sched::in_scheduled() {
            sched::cv_notify(self as *const Self as *const () as usize, true);
        }
        self.inner.notify_all();
    }
}
