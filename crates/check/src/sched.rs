//! The virtual scheduler: real OS threads serialized onto a single baton.
//!
//! Exactly one virtual thread runs at a time. Every instrumented operation
//! (atomic, fence, lock, condvar, spawn/join) calls a *yield point*; the
//! scheduler records the event and picks the next runnable thread with a
//! seeded xorshift PRNG, so the whole interleaving — and therefore every
//! observable outcome of a data-race-free-but-wrongly-synchronized program
//! — is a pure function of the seed. Blocking primitives deschedule the
//! caller and re-ready it on release/notify/finish. If no thread is
//! runnable while some are still blocked, that schedule is a deadlock (a
//! lost wakeup shows up exactly this way) and the run fails with a
//! replayable seed + operation trace.
//!
//! Because the baton admits one thread at a time and every handoff goes
//! through a mutex, all memory written by the previously scheduled thread
//! is visible to the next one: the explorer explores *sequentially
//! consistent* interleavings. Weak-memory reorderings are out of scope
//! (see ARCHITECTURE.md §verification for what covers those).
//!
//! On failure the scheduler flips into **free-run** mode: every virtual
//! thread is released from the baton and runs on real concurrency so the
//! iteration can drain instead of leaking threads parked on the handshake.
//! Condvar waits become timed waits in free-run so a waiter whose notifier
//! already exited cannot hang the teardown.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering as AtOrd};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Number of trailing trace events reproduced in a failure report.
const TRACE_TAIL: usize = 200;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Ready,
    BlockedMutex(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Done,
}

#[derive(Clone, Copy)]
struct Event {
    step: u64,
    tid: usize,
    label: &'static str,
}

struct State {
    statuses: Vec<Status>,
    current: Option<usize>,
    rng: u64,
    steps: u64,
    max_steps: u64,
    preempt_left: Option<u32>,
    trace: Vec<Event>,
    /// `(message, formatted trace)` — the trace is frozen at failure time
    /// so free-run teardown can't append nondeterministic tail events.
    failure: Option<(String, String)>,
    free_run: bool,
    done: usize,
}

/// One exploration iteration's scheduler. Shared by all of the
/// iteration's virtual threads through an `Arc`.
pub(crate) struct SchedInner {
    mx: Mutex<State>,
    cv: Condvar,
    /// Mirror of `State::free_run` readable without the lock (fast path
    /// for yield points after a failure).
    free: AtomicBool,
}

fn strip<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|p| p.into_inner())
}

/// SplitMix64 — used to whiten user seeds and derive per-iteration seeds.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn next_rng(st: &mut State) -> u64 {
    let mut x = st.rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    st.rng = x;
    x
}

impl SchedInner {
    pub(crate) fn new(seed: u64, max_steps: u64, preemption_bound: Option<u32>) -> Arc<Self> {
        let whitened = splitmix64(seed);
        Arc::new(Self {
            mx: Mutex::new(State {
                // tid 0 is the scenario's root thread, scheduled first.
                statuses: vec![Status::Ready],
                current: Some(0),
                rng: if whitened == 0 {
                    0x9E37_79B9_7F4A_7C15
                } else {
                    whitened
                },
                steps: 0,
                max_steps,
                preempt_left: preemption_bound,
                trace: Vec::new(),
                failure: None,
                free_run: false,
                done: 0,
            }),
            cv: Condvar::new(),
            free: AtomicBool::new(false),
        })
    }

    fn st(&self) -> MutexGuard<'_, State> {
        strip(self.mx.lock())
    }

    fn fail(&self, st: &mut State, msg: String) {
        if st.failure.is_none() {
            let trace = Self::format_trace(st);
            st.failure = Some((msg, trace));
        }
        st.free_run = true;
        self.free.store(true, AtOrd::Release);
        self.cv.notify_all();
    }

    /// Pick the next runnable thread (possibly `me`) and hand it the
    /// baton. With a preemption bound, a runnable `me` keeps the baton
    /// once the budget is spent; each involuntary switch away from a
    /// runnable thread costs one unit.
    fn pick_next(&self, st: &mut State, me: usize) {
        let runnable: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.done < st.statuses.len() {
                let dump: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("t{i}={s:?}"))
                    .collect();
                self.fail(
                    st,
                    format!(
                        "deadlock: every live thread is blocked ({}) — a lost wakeup looks exactly like this",
                        dump.join(", ")
                    ),
                );
            } else {
                st.current = None;
            }
            self.cv.notify_all();
            return;
        }
        let me_ready = st.statuses.get(me).copied() == Some(Status::Ready);
        let pick = if me_ready && st.preempt_left == Some(0) {
            me
        } else {
            let p = runnable[(next_rng(st) as usize) % runnable.len()];
            if me_ready && p != me {
                if let Some(n) = st.preempt_left.as_mut() {
                    *n -= 1;
                }
            }
            p
        };
        st.current = Some(pick);
        if pick != me {
            self.cv.notify_all();
        }
    }

    fn wait_turn(&self, mut st: MutexGuard<'_, State>, me: usize) {
        while !(st.free_run || st.current == Some(me)) {
            st = strip(self.cv.wait(st));
        }
    }

    /// A voluntary yield point: record the op about to execute, charge the
    /// step budget, reschedule.
    fn yield_at(&self, me: usize, label: &'static str) {
        let mut st = self.st();
        if st.free_run {
            return;
        }
        st.steps += 1;
        let step = st.steps;
        st.trace.push(Event {
            step,
            tid: me,
            label,
        });
        if step > st.max_steps {
            let max = st.max_steps;
            self.fail(
                &mut st,
                format!("step budget ({max}) exhausted — livelock or runaway schedule"),
            );
            return;
        }
        self.pick_next(&mut st, me);
        self.wait_turn(st, me);
    }

    /// Deschedule `me` as `status`; optionally first re-ready the waiters
    /// of a just-released mutex (the condvar-wait path releases the lock
    /// and blocks in one baton-atomic step).
    fn block_at(
        &self,
        me: usize,
        status: Status,
        label: &'static str,
        release_mutex: Option<usize>,
    ) {
        let mut st = self.st();
        if st.free_run {
            return;
        }
        st.steps += 1;
        let step = st.steps;
        st.trace.push(Event {
            step,
            tid: me,
            label,
        });
        if let Some(addr) = release_mutex {
            Self::ready_mutex_waiters(&mut st, addr);
        }
        st.statuses[me] = status;
        self.pick_next(&mut st, me);
        self.wait_turn(st, me);
    }

    fn ready_mutex_waiters(st: &mut State, addr: usize) {
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedMutex(addr) {
                *s = Status::Ready;
            }
        }
    }

    /// Register a new virtual thread; it starts `Ready` and runs when the
    /// scheduler first picks it.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.st();
        st.statuses.push(Status::Ready);
        st.statuses.len() - 1
    }

    /// Entry handshake for a freshly spawned virtual thread.
    pub(crate) fn wait_until_scheduled(&self, me: usize) {
        let st = self.st();
        self.wait_turn(st, me);
    }

    /// Join: block until `target` finishes (no-op if it already has).
    fn join_at(&self, me: usize, target: usize) {
        let mut st = self.st();
        if st.free_run || st.statuses[target] == Status::Done {
            return;
        }
        st.steps += 1;
        let step = st.steps;
        st.trace.push(Event {
            step,
            tid: me,
            label: "thread::join",
        });
        st.statuses[me] = Status::BlockedJoin(target);
        self.pick_next(&mut st, me);
        self.wait_turn(st, me);
    }

    /// A virtual thread's body finished (or panicked — recorded
    /// separately): mark done, release joiners, hand off the baton.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.st();
        st.statuses[me] = Status::Done;
        st.done += 1;
        if !st.free_run {
            st.steps += 1;
            let step = st.steps;
            st.trace.push(Event {
                step,
                tid: me,
                label: "finish",
            });
        }
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedJoin(me) {
                *s = Status::Ready;
            }
        }
        self.pick_next(&mut st, me);
        // Unconditionally wake outcome watchers (the iteration driver).
        self.cv.notify_all();
    }

    /// Record a panic that unwound out of a virtual thread's body as the
    /// iteration's failure (first failure wins).
    pub(crate) fn record_panic(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_owned());
        let mut st = self.st();
        self.fail(&mut st, format!("virtual thread t{tid} panicked: {msg}"));
    }

    /// Block until the iteration either fails or every virtual thread
    /// finishes. Returns the step count on success, `(message, trace)` on
    /// failure.
    pub(crate) fn wait_outcome(&self) -> Result<u64, (String, String)> {
        let mut st = self.st();
        loop {
            if let Some((msg, trace)) = st.failure.clone() {
                return Err((msg, trace));
            }
            if st.done == st.statuses.len() {
                return Ok(st.steps);
            }
            st = strip(self.cv.wait(st));
        }
    }

    fn format_trace(st: &State) -> String {
        let n = st.trace.len();
        let start = n.saturating_sub(TRACE_TAIL);
        let mut out = String::new();
        if start > 0 {
            out.push_str(&format!("    … {start} earlier events elided …\n"));
        }
        for e in &st.trace[start..] {
            out.push_str(&format!(
                "    step {:>6}  t{}  {}\n",
                e.step, e.tid, e.label
            ));
        }
        out
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<SchedInner>, usize)>> = const { RefCell::new(None) };
}

/// Bind this OS thread to a scheduler as virtual thread `tid`.
pub(crate) fn install(sched: Arc<SchedInner>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn ctx() -> Option<(Arc<SchedInner>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// The scheduler, if this thread is virtual AND the iteration has not
/// flipped into free-run teardown.
pub(crate) fn ctx_if_scheduled() -> Option<(Arc<SchedInner>, usize)> {
    ctx().filter(|(s, _)| !s.free.load(AtOrd::Acquire))
}

/// How the current OS thread relates to a scheduler.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// No scheduler on this thread: primitives pass straight through.
    Unscheduled,
    /// Scheduled but the iteration failed: drain on real concurrency.
    FreeRun,
    /// Under the baton.
    Scheduled,
}

pub(crate) fn mode() -> Mode {
    match ctx() {
        None => Mode::Unscheduled,
        Some((s, _)) => {
            if s.free.load(AtOrd::Acquire) {
                Mode::FreeRun
            } else {
                Mode::Scheduled
            }
        }
    }
}

pub(crate) fn in_scheduled() -> bool {
    mode() == Mode::Scheduled
}

/// The yield point every instrumented operation passes through.
pub(crate) fn yield_point(label: &'static str) {
    if let Some((sched, me)) = ctx_if_scheduled() {
        sched.yield_at(me, label);
    }
}

/// Deschedule the caller until `addr`'s mutex is released.
pub(crate) fn block_on_mutex(addr: usize) {
    if let Some((sched, me)) = ctx_if_scheduled() {
        sched.block_at(me, Status::BlockedMutex(addr), "Mutex::blocked", None);
    }
}

/// Mark every thread blocked on `addr`'s mutex runnable again (the real
/// lock has just been released).
pub(crate) fn mutex_released(addr: usize) {
    if let Some((sched, _)) = ctx_if_scheduled() {
        let mut st = sched.st();
        if !st.free_run {
            SchedInner::ready_mutex_waiters(&mut st, addr);
        }
    }
}

/// Condvar wait: in one baton-atomic step, re-ready the released mutex's
/// waiters and deschedule the caller as a waiter on `cv_addr`.
pub(crate) fn cv_block(cv_addr: usize, mutex_addr: usize) {
    if let Some((sched, me)) = ctx_if_scheduled() {
        sched.block_at(
            me,
            Status::BlockedCv(cv_addr),
            "Condvar::wait",
            Some(mutex_addr),
        );
    }
}

/// Virtual notify: re-ready one (PRNG-chosen) or all waiters of `cv_addr`.
/// No spurious wakeups under the baton — determinism over realism; the
/// predicate loops in the code under test don't care.
pub(crate) fn cv_notify(cv_addr: usize, all: bool) {
    if let Some((sched, me)) = ctx_if_scheduled() {
        let mut st = sched.st();
        if st.free_run {
            return;
        }
        let waiters: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::BlockedCv(cv_addr))
            .map(|(i, _)| i)
            .collect();
        st.steps += 1;
        let step = st.steps;
        st.trace.push(Event {
            step,
            tid: me,
            label: if all {
                "Condvar::notify_all"
            } else {
                "Condvar::notify_one"
            },
        });
        if waiters.is_empty() {
            return;
        }
        if all {
            for w in waiters {
                st.statuses[w] = Status::Ready;
            }
        } else {
            let w = waiters[(next_rng(&mut st) as usize) % waiters.len()];
            st.statuses[w] = Status::Ready;
        }
    }
}

/// Scheduler-aware join (no-op when unscheduled; the real join handles it).
pub(crate) fn join_on(target: usize) {
    if let Some((sched, me)) = ctx_if_scheduled() {
        sched.join_at(me, target);
    }
}

/// Did the current thread's iteration fail? (Used to skip real joins
/// during free-run teardown, where a leaked waiter could hang them.)
pub(crate) fn failed_current() -> bool {
    matches!(mode(), Mode::FreeRun)
}
