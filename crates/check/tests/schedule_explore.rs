//! Deterministic schedule exploration of the lock-free spine.
//!
//! These tests drive `htvm-core`'s concurrency kernels — the Chase–Lev
//! deque, the segmented injector, the epoch-stamped sleeper registry, and
//! the EARTH-style sync slot — through the `htvm-check` explorer. The core
//! is built with `--features check`, so every atomic op, fence, lock and
//! condvar wait inside those kernels is a schedule point.
//!
//! Three kinds of test live here:
//!
//! 1. **Invariant sweeps**: correct protocols must pass *every* explored
//!    schedule (no job loss, no double-take, no lost wakeup, fire exactly
//!    once).
//! 2. **Mutant catches**: deliberately broken variants (committed behind
//!    `cfg(check)` in core) must be *caught*, proving the explorer actually
//!    covers the race each real protocol defends against. Their failing
//!    seeds are committed below.
//! 3. **Regression seeds**: schedules that exposed real bugs fixed in this
//!    repo, replayed forever. `SEED_SYNC_SLOT_LOST_RACER` reproduced the
//!    `SyncSlot::set_action` accounting race (a post-crossing racer could
//!    silently drop another racer's armed action, return `true`, and never
//!    tick `late_actions`) before `sync.rs` re-checked `remaining` under
//!    the action lock.
//!
//! To reproduce a CI-printed seed locally:
//!
//! ```text
//! htvm_check::replay("<scenario>", &cfg, 0x<seed>, scenario_fn)
//! ```
//!
//! See ARCHITECTURE.md §verification for what this style of exploration
//! does and does not cover (sequentially consistent interleavings only;
//! weak-memory arguments stay with Lê et al. and the stress suites).

use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex as StdMutex};

use htvm_check::{check_corpus, explore, random_seeds_from_env, replay, Config};
use htvm_core::deque::{Injector, Steal, Worker};
use htvm_core::sleepers::{ParkOutcome, Sleepers};
use htvm_core::sync::SyncSlot;
use htvm_core::{AdmissionQueue, AdmitError, CancelToken};

// ---------------------------------------------------------------------------
// Committed seed corpus.
//
// Every constant below is a seed that either (a) exposed a real bug fixed
// in this repo, or (b) catches a committed mutant — proof the explorer
// covers that protocol's load-bearing race. Replayed by `committed_corpus_*`
// tests on every run. Schedules are a pure function of (seed, program), so
// these replay identically on any machine.
// ---------------------------------------------------------------------------

/// Real bug: `SyncSlot::set_action` racer accounting (see module docs).
/// Under the pre-fix code this schedule made two racers on a zero-count
/// slot both return `true` while only one action ran and `late_actions`
/// stayed 0. Must pass forever now.
const SEED_SYNC_SLOT_LOST_RACER: u64 = 0x203cfdbad06e70dc;

/// Catches `Sleepers::park_mutant_no_recheck` (check-then-park race,
/// invariant 2): the worker registers after the spawner's wake scan and
/// sleeps through the wakeup — a deadlock under this schedule.
const SEED_SLEEPERS_MUTANT_LOST_WAKEUP: u64 = 0x98603fddc26f6e07;

/// Catches `Stealer::steal_mutant_no_cas` (double-take): two thieves read
/// the same `top` and both claim the same element.
const SEED_DEQUE_MUTANT_DOUBLE_TAKE: u64 = 0xf8b44b6aadf07fd5;

/// Serving-layer seeds (PR 7): the admission handoff and the
/// cancel-vs-dispatch race both pass their full sweeps under these base
/// seeds; committed so the exact explored schedules replay forever.
const SEED_ADMISSION_HANDOFF: u64 = 0x6c62272e07bb0142;
const SEED_CANCEL_VS_DISPATCH: u64 = 0x27d4eb2f165667c5;

/// Elastic retire, side 1: the retire flag racing a worker's park
/// (`Pool::retire_in`'s flag → bump → `Sleepers::wake_worker` handshake
/// against the park abort re-check). No schedule may strand the retiring
/// worker asleep or leave a token behind.
const SEED_RETIRE_VS_PARK: u64 = 0x9e3779b97f4a7c15;

/// Elastic retire, side 2: a retire racing a concurrent spawn's
/// publish/bump/wake. The retiring worker may absorb the spawn's wake
/// token and exit without searching; the retire path's follow-up wake
/// (`finish_retire`'s unconditional re-wake after the republish) must
/// re-deliver it so the surviving worker finds the job — a lost job
/// here deadlocks the schedule.
const SEED_RETIRE_VS_SPAWN: u64 = 0x2545f4914f6cdd1d;

/// Supervision seeds (PR 10): worker death (`DeathWatch`) racing a
/// retire request for the same slot, a death's deque republish racing
/// a parked peer, and a dispatcher death racing live submissions.
/// Full sweeps pass under these base seeds; committed so the exact
/// explored schedules replay forever.
const SEED_DEATH_VS_RETIRE: u64 = 0xd1342543de82ef95;
const SEED_DEATH_VS_SPAWN: u64 = 0x94d049bb133111eb;
const SEED_DISPATCHER_RESTART_VS_SUBMIT: u64 = 0xbf58476d1ce4e5b7;

/// Shared per-test setup: install the between-iterations reset of core's
/// process-wide epoch registry (required for seed-exact replay of deque
/// scenarios) and build a bounds config.
fn cfg(iterations: u64) -> Config {
    htvm_check::set_iteration_reset(htvm_core::deque::check_reset_epochs);
    Config {
        iterations,
        max_steps: 40_000,
        preemption_bound: None,
    }
}

// ---------------------------------------------------------------------------
// Chase–Lev deque: owner pop vs thief steal, including buffer growth.
// ---------------------------------------------------------------------------

/// Fill the buffer to capacity serially, then race the owner (pushing a
/// few more — the next push grows the buffer while thieves may be mid-read
/// on the old one — then draining) against two thieves. Every pushed value
/// must be claimed exactly once, across pops and steals combined.
fn deque_pop_vs_steal_scenario() {
    const FILL: u64 = 64; // MIN_BUFFER_CAP: next push forces a grow.
    const EXTRA: u64 = 3;
    let w = Worker::new_lifo();
    for v in 0..FILL {
        w.push(v);
    }
    let claimed = Arc::new(StdMutex::new(Vec::new()));
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let s = w.stealer();
            let claimed = claimed.clone();
            htvm_check::thread::spawn(move || {
                let mut mine = Vec::new();
                for _ in 0..4 {
                    if let Steal::Success(v) = s.steal() {
                        mine.push(v);
                    }
                }
                claimed.lock().unwrap().extend(mine);
            })
        })
        .collect();
    for v in FILL..FILL + EXTRA {
        w.push(v);
    }
    // Drain: the owner is the only producer, so a `None` means empty for
    // good (thieves only remove).
    let mut popped = Vec::new();
    while let Some(v) = w.pop() {
        popped.push(v);
    }
    for t in thieves {
        t.join();
    }
    let mut all = claimed.lock().unwrap().clone();
    all.extend(popped);
    all.sort_unstable();
    let expect: Vec<u64> = (0..FILL + EXTRA).collect();
    assert_eq!(all, expect, "every value claimed exactly once");
}

#[test]
fn deque_pop_vs_steal_no_loss_no_dup() {
    explore(
        "deque-pop-vs-steal",
        &cfg(150),
        0x9e3779b97f4a7c15,
        deque_pop_vs_steal_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

/// The last-element race Lê et al.'s SeqCst fence exists for: one element,
/// the owner pops while two thieves steal. Exactly one side may win it.
fn deque_last_element_scenario() {
    let w = Worker::new_lifo();
    w.push(7u64);
    let wins = Arc::new(AtomicUsize::new(0));
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let s = w.stealer();
            let wins = wins.clone();
            htvm_check::thread::spawn(move || {
                for _ in 0..2 {
                    if let Steal::Success(v) = s.steal() {
                        assert_eq!(v, 7);
                        wins.fetch_add(1, StdOrdering::SeqCst);
                    }
                }
            })
        })
        .collect();
    if w.pop().is_some() {
        wins.fetch_add(1, StdOrdering::SeqCst);
    }
    for t in thieves {
        t.join();
    }
    assert_eq!(
        wins.load(StdOrdering::SeqCst),
        1,
        "the single element must be claimed exactly once"
    );
}

#[test]
fn deque_last_element_claimed_exactly_once() {
    explore(
        "deque-last-element",
        &cfg(400),
        0x2545f4914f6cdd1d,
        deque_last_element_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

/// Satellite: `len()` under the owner's speculative `bottom` decrement.
/// `Worker::pop` stores `bottom - 1` *before* learning the deque is empty;
/// a watcher sampling between that store and the restore sees `b < t`.
/// The snapshot must saturate to 0, never wrap to 2^64-ish garbage.
fn deque_len_saturation_scenario() {
    let w = Worker::new_lifo();
    let s = w.stealer();
    let watcher = htvm_check::thread::spawn(move || {
        for _ in 0..5 {
            let n = s.len();
            assert!(n <= 1, "len snapshot wrapped: {n}");
            assert!(s.len() != usize::MAX, "len underflowed");
        }
    });
    // Pop on an empty (then one-element) deque: each attempt opens the
    // inconsistent b < t window for the watcher to land in.
    for round in 0..3u64 {
        if round == 1 {
            w.push(1);
        }
        let _ = w.pop();
        assert!(w.len() <= 1, "owner-side len snapshot wrapped");
    }
    watcher.join();
}

#[test]
fn deque_len_saturates_during_speculative_pop() {
    explore(
        "deque-len-saturation",
        &cfg(300),
        0x853c49e6748fea9b,
        deque_len_saturation_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

/// Mutant catch: the CAS-less steal must be caught double-taking. This is
/// the race the real `Stealer::steal`'s `top` CAS defends against.
fn deque_mutant_double_take_scenario() {
    let w = Worker::new_lifo();
    for v in 0..3u64 {
        w.push(v);
    }
    let claimed = Arc::new(StdMutex::new(Vec::new()));
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let s = w.stealer();
            let claimed = claimed.clone();
            htvm_check::thread::spawn(move || {
                let mut mine = Vec::new();
                for _ in 0..2 {
                    if let Steal::Success(v) = s.steal_mutant_no_cas() {
                        mine.push(v);
                    }
                }
                claimed.lock().unwrap().extend(mine);
            })
        })
        .collect();
    for t in thieves {
        t.join();
    }
    let mut got = claimed.lock().unwrap().clone();
    while let Some(v) = w.pop() {
        got.push(v);
    }
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2], "an element was double-taken or lost");
}

#[test]
fn mutant_steal_without_cas_is_caught() {
    let failure = explore(
        "deque-mutant-double-take",
        &cfg(300),
        0xda942042e4dd58b5,
        deque_mutant_double_take_scenario,
    )
    .expect_err("the explorer must catch the CAS-less steal double-taking");
    assert!(
        failure.message.contains("double-taken or lost"),
        "unexpected failure mode: {failure}"
    );
    eprintln!("deque mutant caught under seed {:#018x}", failure.seed);
}

// ---------------------------------------------------------------------------
// Segmented injector: exactly-once FIFO, across a segment boundary.
// ---------------------------------------------------------------------------

/// Push one batch spanning two segments, then race two consumers draining
/// it. Each value must be consumed exactly once, and each consumer's local
/// sequence must be increasing (global FIFO implies per-consumer
/// subsequences are ordered).
fn injector_exactly_once_scenario() {
    const N: u64 = 34; // SEGMENT_CAP is 32: the batch crosses a boundary.
    let inj = Arc::new(Injector::new());
    inj.push_batch((0..N).collect());
    let taken = Arc::new(StdMutex::new(Vec::new()));
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let inj = inj.clone();
            let taken = taken.clone();
            htvm_check::thread::spawn(move || {
                let mut mine: Vec<u64> = Vec::new();
                loop {
                    match inj.steal() {
                        Steal::Success(v) => mine.push(v),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
                assert!(
                    mine.windows(2).all(|p| p[0] < p[1]),
                    "per-consumer order not FIFO: {mine:?}"
                );
                taken.lock().unwrap().extend(mine);
            })
        })
        .collect();
    for c in consumers {
        c.join();
    }
    let mut all = taken.lock().unwrap().clone();
    all.sort_unstable();
    let expect: Vec<u64> = (0..N).collect();
    assert_eq!(all, expect, "every injected value consumed exactly once");
}

#[test]
fn injector_exactly_once_fifo_across_segments() {
    explore(
        "injector-exactly-once",
        &cfg(150),
        0xbf58476d1ce4e5b9,
        injector_exactly_once_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

// ---------------------------------------------------------------------------
// Sleepers: the check-then-park race (invariants 2–4 of the protocol).
// ---------------------------------------------------------------------------

/// One worker races `observe → search → park` against a spawner's
/// `publish → bump → wake`. No schedule may lose the wakeup: the worker
/// always ends up consuming the job, and no token or registration is left
/// behind.
fn sleepers_no_lost_wakeup_scenario() {
    let s = Arc::new(Sleepers::new(1, 1));
    let job = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let outcome = Arc::new(StdMutex::new(None));
    let worker = {
        let s = s.clone();
        let job = job.clone();
        let outcome = outcome.clone();
        htvm_check::thread::spawn(move || {
            loop {
                let epoch = s.observe_epoch();
                // Final work search.
                if job.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                let out = s.park(0, 0, epoch, || false);
                *outcome.lock().unwrap() = Some(out);
                // Woken / Withdrawn / TokenConsumed / StrayToken all mean
                // the same thing to a worker: search again.
            }
        })
    };
    // The spawner side, in protocol order: publish, bump, wake.
    job.store(true, std::sync::atomic::Ordering::SeqCst);
    s.bump_epoch();
    let woke = s.wake_one_in(0);
    worker.join();
    assert_eq!(s.parked(), 0, "no registration left behind");
    // Token hygiene (invariant 4): a fresh park attempt must not find a
    // stray token. `aborting` makes it withdraw instead of sleeping.
    let out = s.park(0, 0, s.observe_epoch(), || true);
    assert_eq!(out, ParkOutcome::Withdrawn, "stray token left in a mailbox");
    assert_eq!(s.parked(), 0);
    // Accounting consistency: a targeted wake implies the worker was (or
    // was about to be) registered; it must then have consumed the token.
    if woke.is_some() {
        let got = outcome
            .lock()
            .unwrap()
            .expect("worker parked at least once");
        assert!(
            matches!(got, ParkOutcome::Woken | ParkOutcome::TokenConsumed),
            "a delivered token must be consumed by its registration, got {got:?}"
        );
    }
}

#[test]
fn sleepers_park_never_loses_a_wakeup() {
    // Also under a tight preemption bound: the interesting interleavings
    // of this protocol need few context switches.
    for bound in [None, Some(3)] {
        let c = Config {
            preemption_bound: bound,
            ..cfg(400)
        };
        explore(
            "sleepers-no-lost-wakeup",
            &c,
            0x94d049bb133111eb,
            sleepers_no_lost_wakeup_scenario,
        )
        .unwrap_or_else(|f| panic!("(bound {bound:?}) {f}"));
    }
}

/// Mutant catch: the same scenario, but the worker parks through
/// `park_mutant_no_recheck` — the classic check-then-park bug the epoch
/// re-check (invariant 2) exists for. Some schedule must deadlock.
fn sleepers_mutant_scenario() {
    let s = Arc::new(Sleepers::new(1, 1));
    let job = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let worker = {
        let s = s.clone();
        let job = job.clone();
        htvm_check::thread::spawn(move || {
            loop {
                let epoch = s.observe_epoch();
                if job.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                // BUG (deliberate, committed in core behind cfg(check)):
                // no post-registration epoch re-check.
                let _ = s.park_mutant_no_recheck(0, 0, epoch, || false);
            }
        })
    };
    job.store(true, std::sync::atomic::Ordering::SeqCst);
    s.bump_epoch();
    let _ = s.wake_one_in(0);
    worker.join();
}

#[test]
fn mutant_park_without_recheck_is_caught() {
    let failure = explore(
        "sleepers-mutant-lost-wakeup",
        &cfg(400),
        0xd6e8feb86659fd93,
        sleepers_mutant_scenario,
    )
    .expect_err("the explorer must catch the check-then-park race");
    assert!(
        failure.message.contains("deadlock"),
        "expected a lost-wakeup deadlock, got: {failure}"
    );
    eprintln!("sleepers mutant caught under seed {:#018x}", failure.seed);
}

/// Elastic retire vs park: models `run_worker`'s loop-top retire check
/// plus `Pool::flag_retiring`'s two-sided handshake (flag SeqCst → epoch
/// bump → targeted `wake_worker`). Whatever the interleaving, the worker
/// must terminate — either its park abort sees the flag, its epoch
/// re-check fires, or the targeted wake finds its registration — and no
/// token may be left in a mailbox afterwards (invariant 4).
fn retire_vs_park_scenario() {
    let s = Arc::new(Sleepers::new(1, 1));
    let retiring = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let worker = {
        let s = s.clone();
        let retiring = retiring.clone();
        htvm_check::thread::spawn(move || loop {
            let epoch = s.observe_epoch();
            if retiring.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            let _ = s.park(0, 0, epoch, || {
                retiring.load(std::sync::atomic::Ordering::SeqCst)
            });
        })
    };
    // The retire side, in protocol order: flag, bump, targeted wake.
    retiring.store(true, std::sync::atomic::Ordering::SeqCst);
    s.bump_epoch();
    let _ = s.wake_worker(0, 0);
    worker.join();
    assert_eq!(s.parked(), 0, "no registration left behind");
    // Token hygiene: the slot's mailbox must be clean for its next
    // occupant (a grown worker reusing the slot).
    let out = s.park(0, 0, s.observe_epoch(), || true);
    assert_eq!(out, ParkOutcome::Withdrawn, "stray token left in a mailbox");
}

#[test]
fn retiring_worker_never_sleeps_through_its_retire() {
    for bound in [None, Some(3)] {
        let c = Config {
            preemption_bound: bound,
            ..cfg(400)
        };
        explore(
            "retire-vs-park",
            &c,
            SEED_RETIRE_VS_PARK,
            retire_vs_park_scenario,
        )
        .unwrap_or_else(|f| panic!("(bound {bound:?}) {f}"));
    }
}

/// Elastic retire vs spawn: worker 0 is retired while a spawn publishes
/// a job with the usual publish → bump → wake sequence. The spawn's
/// token may land on worker 0, which exits without searching (the
/// retire check precedes the job search, as in `run_worker`); the
/// retire path's follow-up wake must then re-deliver the signal so
/// worker 1 finds the job. The job must execute exactly once, and a
/// schedule that strands it while worker 1 sleeps deadlocks the joins.
fn retire_vs_spawn_scenario() {
    let s = Arc::new(Sleepers::new(1, 2));
    let job = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let retiring = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let stop = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let executed = Arc::new(AtomicUsize::new(0));
    // Worker 0: a normal search loop with the loop-top retire check.
    let w0 = {
        let (s, job, retiring, executed) =
            (s.clone(), job.clone(), retiring.clone(), executed.clone());
        htvm_check::thread::spawn(move || loop {
            let epoch = s.observe_epoch();
            if retiring.load(std::sync::atomic::Ordering::SeqCst) {
                return;
            }
            if job.swap(false, std::sync::atomic::Ordering::SeqCst) {
                executed.fetch_add(1, StdOrdering::SeqCst);
                continue;
            }
            let _ = s.park(0, 0, epoch, || {
                retiring.load(std::sync::atomic::Ordering::SeqCst)
            });
        })
    };
    // Worker 1: survives the retire; must drain the job before stopping
    // (observing `stop` re-searches once — the publish precedes the stop
    // store, so a stale pre-publish search cannot leak the job out).
    let w1 = {
        let (s, job, stop, executed) = (s.clone(), job.clone(), stop.clone(), executed.clone());
        htvm_check::thread::spawn(move || loop {
            let epoch = s.observe_epoch();
            if job.swap(false, std::sync::atomic::Ordering::SeqCst) {
                executed.fetch_add(1, StdOrdering::SeqCst);
                continue;
            }
            if stop.load(std::sync::atomic::Ordering::SeqCst) {
                if job.swap(false, std::sync::atomic::Ordering::SeqCst) {
                    executed.fetch_add(1, StdOrdering::SeqCst);
                }
                return;
            }
            let _ = s.park(1, 0, epoch, || {
                stop.load(std::sync::atomic::Ordering::SeqCst)
            });
        })
    };
    // Spawn side: publish, bump, wake — the token may land on either.
    job.store(true, std::sync::atomic::Ordering::SeqCst);
    s.bump_epoch();
    let _ = s.wake_one_in(0);
    // Retire side for worker 0: flag, bump, targeted wake…
    retiring.store(true, std::sync::atomic::Ordering::SeqCst);
    s.bump_epoch();
    let _ = s.wake_worker(0, 0);
    // …then the republish follow-up (`finish_retire`'s unconditional
    // re-wake): without this line some schedules strand the job while
    // worker 1 sleeps, and the explorer reports the deadlock.
    s.bump_epoch();
    let _ = s.wake_one_in(0);
    w0.join();
    // Shutdown handshake for the survivor.
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    s.bump_epoch();
    let _ = s.wake_one_in(0);
    w1.join();
    assert_eq!(
        executed.load(StdOrdering::SeqCst),
        1,
        "the spawned job must run exactly once across the retire"
    );
    assert_eq!(s.parked(), 0, "no registration left behind");
    for w in 0..2 {
        let out = s.park(w, 0, s.observe_epoch(), || true);
        assert_eq!(out, ParkOutcome::Withdrawn, "stray token in mailbox {w}");
    }
}

#[test]
fn retire_racing_a_spawn_never_loses_the_job() {
    for bound in [None, Some(3)] {
        let c = Config {
            preemption_bound: bound,
            ..cfg(400)
        };
        explore(
            "retire-vs-spawn",
            &c,
            SEED_RETIRE_VS_SPAWN,
            retire_vs_spawn_scenario,
        )
        .unwrap_or_else(|f| panic!("(bound {bound:?}) {f}"));
    }
}

// ---------------------------------------------------------------------------
// SyncSlot: fire-exactly-once and racer accounting (the real bug).
// ---------------------------------------------------------------------------

/// The regression scenario for the `set_action` accounting race. On a
/// zero-count slot the threshold is crossed from birth, so there is no
/// legitimate pre-crossing replacement window: of N racing `set_action`
/// calls, exactly one may win (its action runs, it gets `true`) and every
/// other must be told it lost (`false` + one `late_actions` tick).
///
/// Pre-fix, a racer descheduled between arming and its `remaining` check
/// could have its armed action silently replaced by a later racer — it
/// returned `true`, its action never ran, and `late_actions` never moved.
fn sync_slot_zero_count_racers_scenario() {
    let slot = SyncSlot::new(0);
    let ran = Arc::new(AtomicUsize::new(0));
    let trues = Arc::new(AtomicUsize::new(0));
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let slot = slot.clone();
            let ran = ran.clone();
            let trues = trues.clone();
            htvm_check::thread::spawn(move || {
                let r2 = ran.clone();
                if slot.set_action(move || {
                    r2.fetch_add(1, StdOrdering::SeqCst);
                }) {
                    trues.fetch_add(1, StdOrdering::SeqCst);
                }
            })
        })
        .collect();
    for r in racers {
        r.join();
    }
    assert_eq!(ran.load(StdOrdering::SeqCst), 1, "exactly one action runs");
    assert_eq!(
        trues.load(StdOrdering::SeqCst),
        1,
        "exactly one racer may be told it won"
    );
    assert_eq!(
        slot.late_actions(),
        1,
        "every losing racer must tick late_actions exactly once"
    );
    assert!(slot.has_fired());
}

#[test]
fn sync_slot_zero_count_racers_account_exactly_once() {
    explore(
        "sync-slot-racer-accounting",
        &cfg(400),
        0xca01f9dd41c34a10,
        sync_slot_zero_count_racers_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

/// `set_action` racing the crossing signal on a count-1 slot: whatever the
/// schedule, exactly one action runs, the slot ends fired, and every racer
/// either got `true` or was counted late — never neither, never both.
fn sync_slot_signal_vs_set_action_scenario() {
    let slot = SyncSlot::new(1);
    let ran = Arc::new(AtomicUsize::new(0));
    let trues = Arc::new(AtomicUsize::new(0));
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let slot = slot.clone();
            let ran = ran.clone();
            let trues = trues.clone();
            htvm_check::thread::spawn(move || {
                let r2 = ran.clone();
                if slot.set_action(move || {
                    r2.fetch_add(1, StdOrdering::SeqCst);
                }) {
                    trues.fetch_add(1, StdOrdering::SeqCst);
                }
            })
        })
        .collect();
    assert!(slot.signal(), "the only signal crosses the threshold");
    for r in racers {
        r.join();
    }
    assert_eq!(ran.load(StdOrdering::SeqCst), 1, "fire exactly once");
    assert!(slot.has_fired());
    assert_eq!(
        trues.load(StdOrdering::SeqCst) as u64 + slot.late_actions(),
        2,
        "each racer is either armed-or-ran (true) or counted late"
    );
}

#[test]
fn sync_slot_signal_vs_set_action_fires_exactly_once() {
    explore(
        "sync-slot-signal-vs-set-action",
        &cfg(400),
        0xaef17502108ef2d9,
        sync_slot_signal_vs_set_action_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

/// SSP-style wavefront: slot A's continuation signals slot B (the next
/// wavefront), while both slots are over-signalled by racing producers.
/// The wave must advance exactly once end to end.
fn sync_slot_wavefront_scenario() {
    let waves = Arc::new(AtomicUsize::new(0));
    let w2 = waves.clone();
    let slot_b = SyncSlot::with_action(1, move || {
        w2.fetch_add(1, StdOrdering::SeqCst);
    });
    let b2 = slot_b.clone();
    let slot_a = SyncSlot::with_action(1, move || {
        b2.signal();
    });
    let producers: Vec<_> = (0..2)
        .map(|_| {
            let a = slot_a.clone();
            htvm_check::thread::spawn(move || {
                a.signal(); // over-signalled: only one crossing
            })
        })
        .collect();
    for p in producers {
        p.join();
    }
    assert_eq!(
        waves.load(StdOrdering::SeqCst),
        1,
        "the wavefront must advance exactly once"
    );
    assert!(slot_a.has_fired() && slot_b.has_fired());
    assert_eq!(slot_a.late_actions() + slot_b.late_actions(), 0);
}

#[test]
fn sync_slot_wavefront_advances_exactly_once() {
    explore(
        "sync-slot-wavefront",
        &cfg(300),
        0x2b2e160e9dfc2cfb,
        sync_slot_wavefront_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

// ---------------------------------------------------------------------------
// Serving layer (PR 7): admission-queue handoff and cancel-vs-dispatch.
// ---------------------------------------------------------------------------

/// Producer→consumer handoff through the bounded admission queue, racing
/// a close: every *accepted* value must be consumed exactly once and in
/// FIFO order (popped live or drained after close), every refused push
/// must hand the item back typed, and a push after close must be refused
/// as `Closed` — no value may be lost, duplicated, or reordered,
/// whatever the interleaving of push, pop, close and drain.
fn admission_handoff_scenario() {
    let q = Arc::new(AdmissionQueue::new(2));
    let accepted = Arc::new(StdMutex::new(Vec::new()));
    let producer = {
        let q = q.clone();
        let accepted = accepted.clone();
        htvm_check::thread::spawn(move || {
            let mut acc = Vec::new();
            for v in 0..4u64 {
                match q.try_push(v) {
                    Ok(()) => acc.push(v),
                    Err(AdmitError::Full(back)) => {
                        assert_eq!(back, v, "typed refusal returns the item")
                    }
                    Err(AdmitError::Closed(_)) => unreachable!("nobody closed yet"),
                }
            }
            q.close();
            match q.try_push(99) {
                Err(AdmitError::Closed(back)) => assert_eq!(back, 99),
                other => panic!("push after close must refuse Closed, got {other:?}"),
            }
            accepted.lock().unwrap().extend(acc);
        })
    };
    // The consumer races the producer with a bounded number of pop
    // attempts (popping works on a closed queue), then drains the rest.
    let mut got = Vec::new();
    for _ in 0..6 {
        if let Some(v) = q.pop() {
            got.push(v);
        }
    }
    producer.join();
    got.extend(q.drain());
    let accepted = accepted.lock().unwrap().clone();
    assert_eq!(
        got, accepted,
        "handoff must deliver exactly the accepted values, in FIFO order"
    );
    assert_eq!(q.pushed(), accepted.len() as u64);
    assert!(q.is_empty(), "drain after close leaves nothing behind");
}

#[test]
fn admission_handoff_delivers_exactly_once_in_order() {
    explore(
        "admission-queue-handoff",
        &cfg(300),
        SEED_ADMISSION_HANDOFF,
        admission_handoff_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

/// The serving layer's load-bearing race: a request sitting in the
/// admission queue is cancelled *while* the dispatcher moves it. The
/// dispatcher mirrors `htvm_serve::server::dispatch_one` (skip if
/// already resolved, else claim at the grain boundary) for the first
/// request and the shed path (`resolve_rejected`: claim then reject)
/// for the second. Whatever the schedule, each request must resolve to
/// **exactly one** of executed / rejected / cancelled — never zero
/// (a hung client), never two (a double resolution).
fn cancel_vs_dispatch_scenario() {
    const CANCELLED: usize = 1;
    const EXECUTED: usize = 1 << 8;
    const REJECTED: usize = 1 << 16;
    let q = Arc::new(AdmissionQueue::new(2));
    let resolutions: Arc<Vec<AtomicUsize>> =
        Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
    let tokens: Vec<CancelToken> = (0..2)
        .map(|i| {
            let t = CancelToken::new();
            let resolutions = resolutions.clone();
            t.on_cancelled(move || {
                resolutions[i].fetch_add(CANCELLED, StdOrdering::SeqCst);
            });
            q.try_push((i, t.clone()))
                .unwrap_or_else(|_| panic!("fits"));
            t
        })
        .collect();
    let canceller = {
        let tokens = tokens.clone();
        htvm_check::thread::spawn(move || {
            for t in &tokens {
                t.cancel();
            }
        })
    };
    // Dispatch path (first pop): skip if the cancel hook already
    // resolved it, otherwise the grain-boundary claim decides.
    if let Some((i, t)) = q.pop() {
        if !t.is_cancelled() && t.try_claim() {
            resolutions[i].fetch_add(EXECUTED, StdOrdering::SeqCst);
        }
    }
    // Shed path (second pop): claim-then-reject; losing the claim means
    // the concurrent cancel already resolved it and the shed is a no-op.
    if let Some((i, t)) = q.pop() {
        if t.try_claim() {
            resolutions[i].fetch_add(REJECTED, StdOrdering::SeqCst);
        }
    }
    canceller.join();
    for (i, r) in resolutions.iter().enumerate() {
        let r = r.load(StdOrdering::SeqCst);
        assert!(
            r == CANCELLED || r == EXECUTED || r == REJECTED,
            "request {i} must resolve exactly once, got {r:#x}"
        );
    }
}

#[test]
fn cancelled_in_queue_resolves_exactly_one_of_executed_or_rejected() {
    explore(
        "cancel-vs-dispatch",
        &cfg(400),
        SEED_CANCEL_VS_DISPATCH,
        cancel_vs_dispatch_scenario,
    )
    .unwrap_or_else(|f| panic!("{f}"));
}

// ---------------------------------------------------------------------------
// Supervision (PR 10): worker death vs retire/spawn, dispatcher restart.
// ---------------------------------------------------------------------------

/// Per-slot lifecycle states, mirroring `htvm_core::native`.
const SLOT_ACTIVE: u8 = 0;
const SLOT_RETIRING: u8 = 1;
const SLOT_VACANT: u8 = 2;

/// Worker death vs retire: models `DeathWatch::drop` racing
/// `Pool::retire_in`'s `Active → Retiring` request on the same slot.
/// The dying thread republishes its deque, then either sees the retire
/// flag (completing the retire on the dead worker's behalf) or
/// respawns into the still-`Active` slot — in which case the respawned
/// worker's loop-top check / park-abort must observe the flag instead.
/// Whatever the interleaving: the retire completes exactly once, the
/// slot ends `Vacant`, the dead worker's jobs are republished exactly
/// once, and no mailbox token is left behind.
fn death_vs_retire_scenario() {
    let s = Arc::new(Sleepers::new(1, 1));
    let slot = Arc::new(htvm_check::prim::AtomicU8::new(SLOT_ACTIVE));
    let retires = Arc::new(AtomicUsize::new(0));
    let respawns = Arc::new(AtomicUsize::new(0));
    let republished = Arc::new(StdMutex::new(Vec::new()));
    let worker = {
        let (s, slot) = (s.clone(), slot.clone());
        let (retires, respawns) = (retires.clone(), respawns.clone());
        let republished = republished.clone();
        htvm_check::thread::spawn(move || {
            // The worker dies mid-loop: `DeathWatch` fires on its
            // thread with two jobs still queued. Republish them with
            // the retire's bump-then-wake sequence (plus the
            // unconditional rotated re-wake).
            let deque = Worker::new_lifo();
            deque.push(7u64);
            deque.push(8u64);
            let mut repub = Vec::new();
            while let Some(v) = deque.pop() {
                repub.push(v);
            }
            s.bump_epoch();
            for _ in 0..repub.len() {
                let _ = s.wake_one_in(0);
            }
            let _ = s.wake_one_in(0); // rotated re-wake
            republished.lock().unwrap().extend(repub);
            // Death-completes-retire path: the reservation already left
            // the gauge, so finish the retire instead of respawning.
            if slot.load(StdOrdering::SeqCst) == SLOT_RETIRING {
                slot.store(SLOT_VACANT, StdOrdering::SeqCst);
                retires.fetch_add(1, StdOrdering::SeqCst);
                return;
            }
            // Heal path: respawn into the same still-Active slot. The
            // respawn runs sequenced-after the death protocol (thread
            // spawn), so modelling it on the same check-thread
            // preserves the happens-before shape. Its loop is
            // `run_worker`'s: loop-top retire check, then park with
            // the retire re-check as the abort condition.
            respawns.fetch_add(1, StdOrdering::SeqCst);
            loop {
                let epoch = s.observe_epoch();
                if slot.load(StdOrdering::SeqCst) == SLOT_RETIRING {
                    slot.store(SLOT_VACANT, StdOrdering::SeqCst);
                    retires.fetch_add(1, StdOrdering::SeqCst);
                    return;
                }
                let _ = s.park(0, 0, epoch, || {
                    slot.load(StdOrdering::SeqCst) == SLOT_RETIRING
                });
            }
        })
    };
    // Retire side (`Pool::retire_in`), protocol order: flag the slot,
    // bump, targeted wake. The request may land before the death check
    // (the dying thread completes it) or after (the respawned worker
    // must see it — its park-abort or epoch re-check may be the only
    // thing standing between this schedule and a deadlock).
    let won = slot
        .compare_exchange(
            SLOT_ACTIVE,
            SLOT_RETIRING,
            StdOrdering::SeqCst,
            StdOrdering::SeqCst,
        )
        .is_ok();
    s.bump_epoch();
    let _ = s.wake_worker(0, 0);
    worker.join();
    assert!(won, "nothing else requests retire on an Active slot");
    assert_eq!(
        retires.load(StdOrdering::SeqCst),
        1,
        "the retire completes exactly once — by the death or its respawn"
    );
    assert_eq!(slot.load(StdOrdering::SeqCst), SLOT_VACANT);
    assert!(respawns.load(StdOrdering::SeqCst) <= 1);
    let mut repub = republished.lock().unwrap().clone();
    repub.sort_unstable();
    assert_eq!(repub, vec![7, 8], "dead worker's jobs republished once");
    assert_eq!(s.parked(), 0, "no registration left behind");
    let out = s.park(0, 0, s.observe_epoch(), || true);
    assert_eq!(out, ParkOutcome::Withdrawn, "stray token left in a mailbox");
}

#[test]
fn worker_death_racing_a_retire_completes_it_exactly_once() {
    for bound in [None, Some(3)] {
        let c = Config {
            preemption_bound: bound,
            ..cfg(400)
        };
        explore(
            "death-vs-retire",
            &c,
            SEED_DEATH_VS_RETIRE,
            death_vs_retire_scenario,
        )
        .unwrap_or_else(|f| panic!("(bound {bound:?}) {f}"));
    }
}

/// Worker death vs a parked peer: worker 0 dies with a job in its
/// deque while worker 1 is (maybe) asleep. `DeathWatch`'s republish
/// must move the job to the shared injector and re-deliver the wake
/// (bump, per-job wake, rotated re-wake) so the survivor — or the
/// respawned worker itself — claims it. The job must be claimed
/// exactly once (the injector's CAS arbitration), and every mailbox
/// must end clean.
fn death_vs_spawn_scenario() {
    let s = Arc::new(Sleepers::new(1, 2));
    let inj = Arc::new(Injector::new());
    let stop = Arc::new(htvm_check::prim::AtomicBool::new(false));
    let executed = Arc::new(AtomicUsize::new(0));
    // Worker 0 dies with job 42 queued; its death protocol republishes
    // and re-wakes, then the respawned worker searches once before
    // exiting (the real heal keeps searching; one pass is enough to
    // model the respawn racing the survivor for the republished job).
    let w0 = {
        let (s, inj, executed) = (s.clone(), inj.clone(), executed.clone());
        htvm_check::thread::spawn(move || {
            let deque = Worker::new_lifo();
            deque.push(42u64);
            while let Some(v) = deque.pop() {
                inj.push(v);
            }
            s.bump_epoch();
            let _ = s.wake_one_in(0); // one republished job, one wake
            let _ = s.wake_one_in(0); // rotated re-wake
            loop {
                match inj.steal() {
                    Steal::Success(_) => {
                        executed.fetch_add(1, StdOrdering::SeqCst);
                    }
                    Steal::Empty => {}
                    Steal::Retry => continue,
                }
                break;
            }
        })
    };
    // Worker 1: a survivor's search loop — steal, or park with the
    // stop re-check; observing stop re-searches once (the republish
    // precedes the stop store, so a stale pre-publish search cannot
    // leak the job out).
    let w1 = {
        let (s, inj, stop, executed) = (s.clone(), inj.clone(), stop.clone(), executed.clone());
        htvm_check::thread::spawn(move || loop {
            let epoch = s.observe_epoch();
            match inj.steal() {
                Steal::Success(_) => {
                    executed.fetch_add(1, StdOrdering::SeqCst);
                    continue;
                }
                Steal::Retry => continue,
                Steal::Empty => {}
            }
            if stop.load(StdOrdering::SeqCst) {
                loop {
                    match inj.steal() {
                        Steal::Success(_) => {
                            executed.fetch_add(1, StdOrdering::SeqCst);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => {}
                    }
                    break;
                }
                return;
            }
            let _ = s.park(1, 0, epoch, || stop.load(StdOrdering::SeqCst));
        })
    };
    w0.join();
    // Shutdown handshake for the survivor.
    stop.store(true, StdOrdering::SeqCst);
    s.bump_epoch();
    let _ = s.wake_one_in(0);
    w1.join();
    assert_eq!(
        executed.load(StdOrdering::SeqCst),
        1,
        "the dead worker's job must run exactly once"
    );
    assert_eq!(s.parked(), 0, "no registration left behind");
    for w in 0..2 {
        let out = s.park(w, 0, s.observe_epoch(), || true);
        assert_eq!(out, ParkOutcome::Withdrawn, "stray token in mailbox {w}");
    }
}

#[test]
fn worker_death_never_loses_a_queued_job() {
    for bound in [None, Some(3)] {
        let c = Config {
            preemption_bound: bound,
            ..cfg(400)
        };
        explore(
            "death-vs-spawn",
            &c,
            SEED_DEATH_VS_SPAWN,
            death_vs_spawn_scenario,
        )
        .unwrap_or_else(|f| panic!("(bound {bound:?}) {f}"));
    }
}

/// Dispatcher restart vs submit: the dispatcher parks waiting for
/// work, a client's submit (push, bump, wake) races its death — the
/// fault fires *before* any pop, as in `dispatcher_loop`, so no
/// request is ever held by the dying thread — and the successor
/// spawned by the drop guard (sequenced-after on the same
/// check-thread) must drain everything the client admitted. Every
/// accepted request resolves exactly once; the close handshake must
/// terminate the successor whatever the schedule.
fn dispatcher_restart_vs_submit_scenario() {
    let s = Arc::new(Sleepers::new(1, 1));
    let q = Arc::new(AdmissionQueue::<(usize, CancelToken)>::new(4));
    let resolutions: Arc<Vec<AtomicUsize>> =
        Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
    let restarts = Arc::new(AtomicUsize::new(0));
    let dispatcher = {
        let (s, q) = (s.clone(), q.clone());
        let (resolutions, restarts) = (resolutions.clone(), restarts.clone());
        htvm_check::thread::spawn(move || {
            // Incarnation 1: parks waiting for work (a submit's kick
            // may rouse it), then dies before popping anything.
            let epoch = s.observe_epoch();
            if !q.is_closed() && q.is_empty() {
                let _ = s.park(0, 0, epoch, || q.is_closed());
            }
            restarts.fetch_add(1, StdOrdering::SeqCst);
            // Incarnation 2 (the drop guard's successor): the standard
            // pop-then-park loop — it always drains before parking, so
            // a kick token consumed by the dead incarnation cannot
            // strand admitted work.
            loop {
                let epoch = s.observe_epoch();
                let mut progressed = false;
                while let Some((i, t)) = q.pop() {
                    if t.try_claim() {
                        resolutions[i].fetch_add(1, StdOrdering::SeqCst);
                    }
                    progressed = true;
                }
                if q.is_closed() && q.is_empty() {
                    return;
                }
                if !progressed {
                    let _ = s.park(0, 0, epoch, || q.is_closed());
                }
            }
        })
    };
    // The client: two submits, each with its kick (push, bump, wake),
    // then the shutdown close with a final kick.
    for i in 0..2usize {
        q.try_push((i, CancelToken::new()))
            .expect("queue fits both");
        s.bump_epoch();
        let _ = s.wake_one_in(0);
    }
    q.close();
    s.bump_epoch();
    let _ = s.wake_one_in(0);
    dispatcher.join();
    for (i, r) in resolutions.iter().enumerate() {
        assert_eq!(
            r.load(StdOrdering::SeqCst),
            1,
            "request {i} must resolve exactly once across the restart"
        );
    }
    assert_eq!(restarts.load(StdOrdering::SeqCst), 1);
    assert!(q.is_empty(), "nothing left behind after the close drain");
    assert_eq!(s.parked(), 0, "no registration left behind");
    let out = s.park(0, 0, s.observe_epoch(), || true);
    assert_eq!(out, ParkOutcome::Withdrawn, "stray token left in a mailbox");
}

#[test]
fn dispatcher_restart_never_strands_an_admitted_request() {
    for bound in [None, Some(3)] {
        let c = Config {
            preemption_bound: bound,
            ..cfg(400)
        };
        explore(
            "dispatcher-restart-vs-submit",
            &c,
            SEED_DISPATCHER_RESTART_VS_SUBMIT,
            dispatcher_restart_vs_submit_scenario,
        )
        .unwrap_or_else(|f| panic!("(bound {bound:?}) {f}"));
    }
}

// ---------------------------------------------------------------------------
// Committed corpus + fresh random seeds (the CI job's two halves).
// ---------------------------------------------------------------------------

/// Regression seeds for bugs fixed in this repo: these schedules failed
/// once; they must pass forever.
#[test]
fn committed_corpus_regressions_pass() {
    check_corpus(
        "sync-slot-racer-accounting",
        &cfg(1),
        &[SEED_SYNC_SLOT_LOST_RACER],
        sync_slot_zero_count_racers_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "admission-queue-handoff",
        &cfg(1),
        &[SEED_ADMISSION_HANDOFF],
        admission_handoff_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "cancel-vs-dispatch",
        &cfg(1),
        &[SEED_CANCEL_VS_DISPATCH],
        cancel_vs_dispatch_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "retire-vs-park",
        &cfg(1),
        &[SEED_RETIRE_VS_PARK],
        retire_vs_park_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "retire-vs-spawn",
        &cfg(1),
        &[SEED_RETIRE_VS_SPAWN],
        retire_vs_spawn_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "death-vs-retire",
        &cfg(1),
        &[SEED_DEATH_VS_RETIRE],
        death_vs_retire_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "death-vs-spawn",
        &cfg(1),
        &[SEED_DEATH_VS_SPAWN],
        death_vs_spawn_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
    check_corpus(
        "dispatcher-restart-vs-submit",
        &cfg(1),
        &[SEED_DISPATCHER_RESTART_VS_SUBMIT],
        dispatcher_restart_vs_submit_scenario,
    )
    .unwrap_or_else(|f| panic!("regression resurfaced: {f}"));
}

/// Mutant seeds: these schedules must keep *failing* against the committed
/// mutants — if one stops failing, the explorer lost coverage of that race.
#[test]
fn committed_corpus_mutant_seeds_still_catch() {
    let f = replay(
        "sleepers-mutant-lost-wakeup",
        &cfg(1),
        SEED_SLEEPERS_MUTANT_LOST_WAKEUP,
        sleepers_mutant_scenario,
    )
    .expect_err("committed seed no longer catches the check-then-park mutant");
    assert!(f.message.contains("deadlock"), "{f}");
    let f = replay(
        "deque-mutant-double-take",
        &cfg(1),
        SEED_DEQUE_MUTANT_DOUBLE_TAKE,
        deque_mutant_double_take_scenario,
    )
    .expect_err("committed seed no longer catches the CAS-less steal mutant");
    assert!(f.message.contains("double-taken or lost"), "{f}");
}

/// The CI job's fresh-seed half: a few schedules from OS entropy on every
/// invariant scenario. A failure prints the seed (commit it to the corpus
/// above). `HTVM_CHECK_RANDOM_SEEDS=0` makes this fully deterministic.
#[test]
fn fresh_random_seeds_hold_invariants() {
    let seeds = random_seeds_from_env("HTVM_CHECK_RANDOM_SEEDS", 2);
    let scenarios: &[(&str, fn())] = &[
        ("deque-pop-vs-steal", deque_pop_vs_steal_scenario),
        ("deque-last-element", deque_last_element_scenario),
        ("injector-exactly-once", injector_exactly_once_scenario),
        ("sleepers-no-lost-wakeup", sleepers_no_lost_wakeup_scenario),
        ("retire-vs-park", retire_vs_park_scenario),
        ("retire-vs-spawn", retire_vs_spawn_scenario),
        ("death-vs-retire", death_vs_retire_scenario),
        ("death-vs-spawn", death_vs_spawn_scenario),
        (
            "dispatcher-restart-vs-submit",
            dispatcher_restart_vs_submit_scenario,
        ),
        ("admission-queue-handoff", admission_handoff_scenario),
        ("cancel-vs-dispatch", cancel_vs_dispatch_scenario),
        (
            "sync-slot-racer-accounting",
            sync_slot_zero_count_racers_scenario,
        ),
        (
            "sync-slot-signal-vs-set-action",
            sync_slot_signal_vs_set_action_scenario,
        ),
    ];
    for &seed in &seeds {
        for (name, scenario) in scenarios {
            let c = Config {
                iterations: 25,
                ..cfg(0)
            };
            explore(name, &c, seed, scenario)
                .unwrap_or_else(|f| panic!("fresh-seed failure — commit this seed!\n{f}"));
        }
    }
}
