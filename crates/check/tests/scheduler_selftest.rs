//! Self-validation of the explorer, independent of htvm-core: known-buggy
//! micro-programs must be caught (with a replayable seed), known-correct
//! ones must pass, and replays must be exact.

use std::sync::Arc;

use htvm_check::prim::{AtomicBool, AtomicU64, Condvar, Mutex, Ordering};
use htvm_check::{explore, replay, Config};

fn small() -> Config {
    Config {
        iterations: 300,
        max_steps: 10_000,
        preemption_bound: None,
    }
}

/// The canonical interleaving bug: two threads doing a non-atomic
/// read-modify-write. The explorer must find a schedule that loses an
/// update, and the failing seed must replay to the same failure.
#[test]
fn finds_lost_update_and_replays_it() {
    let scenario = || {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                htvm_check::thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "an increment was lost");
    };
    let failure = explore("lost-update", &small(), 1, scenario)
        .expect_err("the explorer must find the lost update");
    assert!(
        failure.message.contains("an increment was lost"),
        "{failure}"
    );
    // Exact replay: same seed, same failure.
    let again = replay("lost-update", &small(), failure.seed, scenario)
        .expect_err("the committed seed must reproduce the failure");
    assert_eq!(again.message, failure.message);
    assert_eq!(again.trace, failure.trace, "replay must be schedule-exact");
}

/// A correct atomic counter passes every schedule, and exploration itself
/// is deterministic: the same base seed yields the same total step count.
#[test]
fn correct_counter_passes_and_exploration_is_deterministic() {
    let scenario = || {
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                htvm_check::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    };
    let cfg = Config {
        iterations: 100,
        ..small()
    };
    let a = explore("atomic-counter", &cfg, 7, scenario).expect("correct program");
    let b = explore("atomic-counter", &cfg, 7, scenario).expect("correct program");
    assert_eq!(
        a.steps, b.steps,
        "same seeds must produce the same schedules"
    );
}

/// Classic AB-BA lock ordering: the explorer must surface the deadlock
/// (all threads blocked) rather than hang.
#[test]
fn detects_abba_deadlock() {
    let failure = explore("abba", &small(), 3, || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (a.clone(), b.clone());
        let t = htvm_check::thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        t.join();
    })
    .expect_err("the explorer must find the AB-BA deadlock");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// Classic lost wakeup: the waiter checks its predicate *outside* the
/// lock, so a notify can slip between check and wait. Shows up as a
/// deadlock (waiter blocked forever, everyone else done).
#[test]
fn detects_lost_wakeup_from_check_outside_lock() {
    let failure = explore("lost-wakeup", &small(), 5, || {
        let flag = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (flag2, pair2) = (flag.clone(), pair.clone());
        let waiter = htvm_check::thread::spawn(move || {
            // BUG (deliberate): predicate checked outside the mutex and
            // never re-checked under it.
            if !flag2.load(Ordering::SeqCst) {
                let (m, cv) = &*pair2;
                let mut g = m.lock();
                cv.wait(&mut g);
            }
        });
        flag.store(true, Ordering::SeqCst);
        {
            let (m, cv) = &*pair;
            let _g = m.lock();
            cv.notify_one();
        }
        waiter.join();
    })
    .expect_err("the explorer must find the lost wakeup");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// The correct check-under-lock protocol passes every schedule, including
/// under a tight preemption bound.
#[test]
fn correct_wait_protocol_passes() {
    for bound in [None, Some(2)] {
        let cfg = Config {
            iterations: 200,
            max_steps: 10_000,
            preemption_bound: bound,
        };
        explore("correct-wait", &cfg, 11, || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = pair.clone();
            let waiter = htvm_check::thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut done = m.lock();
                while !*done {
                    cv.wait(&mut done);
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock() = true;
                cv.notify_one();
            }
            waiter.join();
        })
        .unwrap_or_else(|f| panic!("correct protocol flagged (bound {bound:?}): {f}"));
    }
}

/// A runaway spin loop trips the step budget instead of hanging the test.
#[test]
fn step_budget_catches_livelock() {
    let cfg = Config {
        iterations: 1,
        max_steps: 500,
        preemption_bound: None,
    };
    let failure = explore("livelock", &cfg, 13, || {
        let flag = Arc::new(AtomicBool::new(false));
        // Nobody ever sets the flag: a pure spin.
        while !flag.load(Ordering::SeqCst) {}
    })
    .expect_err("the budget must trip");
    assert!(failure.message.contains("step budget"), "{failure}");
}
