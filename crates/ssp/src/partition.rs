//! Partitioning software-pipelined code into threads — the paper's novel
//! proposal (§3.3): "the software pipelined code is partitioned into
//! threads, each thread composed of several iterations of the selected
//! loop level. The approach is unique in that it exploits instruction-level
//! and thread-level parallelism simultaneously."
//!
//! A [`PartitionPlan`] splits the `N_ℓ` iterations of the pipelined level
//! into `T` contiguous groups. Each group runs the SSP kernel over its
//! iterations on its own thread (SGT). If any dependence is carried at the
//! pipelined level, group `t+1` may only start its first `d` iterations
//! after group `t` finishes its last — a signal wavefront; otherwise the
//! groups are fully independent.
//!
//! [`ThreadedSspModel`] is the analytic cost model; experiment E8 also
//! executes plans on the `htvm-sim` machine (see `htvm-bench`).

use crate::ssp::LevelPlan;

/// A split of the pipelined level's iterations into thread groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Number of threads.
    pub threads: u64,
    /// Iterations of the pipelined level per thread (last may be short).
    pub group: u64,
    /// Whether a level-carried dependence forces a start-up wave between
    /// adjacent groups.
    pub wavefront: bool,
    /// Maximum level-carried distance (wave depth).
    pub max_distance: u64,
}

impl PartitionPlan {
    /// Split `n_l` iterations over `threads` threads given the level plan's
    /// dependence structure.
    pub fn new(plan: &LevelPlan, n_l: u64, threads: u64) -> Self {
        let threads = threads.clamp(1, n_l.max(1));
        let group = n_l.div_ceil(threads);
        let max_distance = plan.max_carried_distance;
        Self {
            threads,
            group,
            wavefront: max_distance > 0,
            max_distance,
        }
    }
}

/// Analytic model of SSP + threading.
#[derive(Debug, Clone)]
pub struct ThreadedSspModel {
    /// Cycles for one thread to process `g` level-iterations:
    /// `slice + (g − 1) × II` plus the saturation bound scaled to the
    /// thread's share of the machine.
    pub per_thread_cycles: u64,
    /// Total modelled cycles including the wavefront delay and spawn
    /// overhead.
    pub total_cycles: u64,
    /// Parallel speedup over the single-thread SSP schedule.
    pub speedup: f64,
}

impl ThreadedSspModel {
    /// Model running `plan` (for a nest whose pipelined level has `n_l`
    /// iterations and `outer` sequential repetitions) on `threads` thread
    /// units, each with its own functional units, with `spawn_cost` cycles
    /// to start each thread.
    ///
    /// The single-unit resource bound does not shrink with threads —
    /// each thread unit brings its own units, so saturation divides by T.
    pub fn evaluate(
        plan: &LevelPlan,
        outer: u64,
        n_l: u64,
        inner: u64,
        res_mii: u64,
        threads: u64,
        spawn_cost: u64,
    ) -> ThreadedSspModel {
        let part = PartitionPlan::new(plan, n_l, threads);
        let g = part.group;
        let ii = plan.schedule.ii;
        let slice = plan.slice_len;

        // One group on one unit.
        let saturation = g * inner * res_mii;
        let path = slice + g.saturating_sub(1) * ii;
        let per_thread = saturation.max(path);

        // Wavefront: group t starts after group t-1 produced its boundary
        // values — one slice-depth delay per hop for carried deps.
        let wave_delay = if part.wavefront {
            (part.threads - 1) * per_thread.min(g * ii + slice)
        } else {
            0
        };
        let startup = spawn_cost * part.threads;
        let total = outer * (per_thread + wave_delay) + startup;

        let single = {
            let sat1 = n_l * inner * res_mii;
            let path1 = slice + n_l.saturating_sub(1) * ii;
            outer * sat1.max(path1)
        };
        ThreadedSspModel {
            per_thread_cycles: per_thread,
            total_cycles: total,
            speedup: single as f64 / total as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LoopNest;
    use crate::ssp::{schedule_level, SspConfig};

    fn matmul_plan() -> (LoopNest, LevelPlan) {
        let nest = LoopNest::matmul_like(64, 16, 16);
        let plan = schedule_level(&nest, 0, &SspConfig::default()).unwrap();
        (nest, plan)
    }

    #[test]
    fn partition_splits_evenly() {
        let (_, plan) = matmul_plan();
        let p = PartitionPlan::new(&plan, 64, 4);
        assert_eq!(p.threads, 4);
        assert_eq!(p.group, 16);
    }

    #[test]
    fn partition_clamps_threads_to_iterations() {
        let (_, plan) = matmul_plan();
        let p = PartitionPlan::new(&plan, 8, 100);
        assert_eq!(p.threads, 8);
        assert_eq!(p.group, 1);
    }

    #[test]
    fn parallel_level_has_no_wavefront() {
        let (_, plan) = matmul_plan();
        let p = PartitionPlan::new(&plan, 64, 4);
        assert!(!p.wavefront, "i-level of matmul carries no dependence");
    }

    #[test]
    fn stencil_time_level_has_wavefront() {
        let nest = LoopNest::stencil_like(32, 64);
        let plan = schedule_level(&nest, 0, &SspConfig::default()).unwrap();
        let p = PartitionPlan::new(&plan, 32, 4);
        assert!(p.wavefront, "time level carries the recurrence");
    }

    #[test]
    fn threading_scales_parallel_levels() {
        let (nest, plan) = matmul_plan();
        let inner: u64 = nest.trip_counts[1..].iter().product();
        let m1 = ThreadedSspModel::evaluate(&plan, 1, 64, inner, 2, 1, 120);
        let m8 = ThreadedSspModel::evaluate(&plan, 1, 64, inner, 2, 8, 120);
        assert!(
            m8.speedup > 4.0,
            "8 threads on a parallel level: speedup {:.2}",
            m8.speedup
        );
        assert!(m8.total_cycles < m1.total_cycles);
    }

    #[test]
    fn threading_saturates_with_diminishing_returns() {
        let (nest, plan) = matmul_plan();
        let inner: u64 = nest.trip_counts[1..].iter().product();
        let m32 = ThreadedSspModel::evaluate(&plan, 1, 64, inner, 2, 32, 120);
        let m64 = ThreadedSspModel::evaluate(&plan, 1, 64, inner, 2, 64, 120);
        let marginal = m32.total_cycles as f64 / m64.total_cycles as f64;
        assert!(
            marginal < 2.0,
            "doubling threads at saturation must not double speed"
        );
    }

    #[test]
    fn wavefront_limits_speedup() {
        let nest = LoopNest::stencil_like(32, 64);
        let plan = schedule_level(&nest, 0, &SspConfig::default()).unwrap();
        let m8 = ThreadedSspModel::evaluate(&plan, 1, 32, 64, 2, 8, 120);
        let nest2 = LoopNest::stencil_like(32, 64);
        let free = schedule_level(&nest2, 1, &SspConfig::default()).unwrap();
        let f8 = ThreadedSspModel::evaluate(&free, 32, 64, 1, 2, 8, 120);
        assert!(
            f8.speedup > m8.speedup,
            "space-parallel partition ({:.2}×) should beat wavefront ({:.2}×)",
            f8.speedup,
            m8.speedup
        );
    }

    #[test]
    fn spawn_cost_matters_for_tiny_groups() {
        let (nest, plan) = matmul_plan();
        let inner: u64 = nest.trip_counts[1..].iter().product();
        let cheap = ThreadedSspModel::evaluate(&plan, 1, 64, inner, 2, 64, 10);
        let costly = ThreadedSspModel::evaluate(&plan, 1, 64, inner, 2, 64, 100_000);
        assert!(costly.total_cycles > cheap.total_cycles);
        assert!(costly.speedup < cheap.speedup);
    }
}
