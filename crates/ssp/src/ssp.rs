//! Single-dimension software pipelining: schedule any level, model its
//! execution time, and select the most profitable level (§3.3; Rong et al.
//! CGO'04).
//!
//! ## Execution-time model
//!
//! Pipelining level `ℓ` overlaps successive *slices* (one iteration of
//! level `ℓ`, containing all loops inner to it, executed sequentially
//! inside the slice). With
//!
//! * `outer = Π_{k<ℓ} N_k` (sequential repetitions of the pipeline),
//! * `inner = Π_{k>ℓ} N_k` (body instances per slice),
//! * `II` — the achieved initiation interval between slices,
//! * `L_slice = max(inner × max(inner_serial_ii, II_body), body_span)` —
//!   the serial length of one slice (inner-carried recurrences serialize
//!   consecutive inner iterations; otherwise the kernel issues one body
//!   instance per `II_body = resMII`),
//! * a machine-throughput bound: every body instance occupies its
//!   functional units for at least `resMII` cycles,
//!
//! the model is
//!
//! ```text
//! cycles(ℓ) = outer × max( N_ℓ × inner × resMII,          // saturation
//!                          L_slice + (N_ℓ − 1) × II )      // critical path
//! ```
//!
//! For the innermost level this degenerates to the classic
//! `(N + S − 1) × II` modulo-scheduling estimate; for outer levels it
//! captures SSP's gain: a level whose inter-slice graph is recurrence-free
//! runs at the *resource* bound even when the innermost loop carries a long
//! recurrence.

use crate::ddg::Ddg;
use crate::ir::LoopNest;
use crate::modulo::{modulo_schedule, ModuloSchedule, Resources, ScheduleError};

/// Tunables for scheduling and selection.
#[derive(Debug, Clone, Default)]
pub struct SspConfig {
    /// Functional-unit mix.
    pub resources: Resources,
    /// Reuse window: dependences with distance ≤ this at the pipelined
    /// level count as data reuse (locality tie-break).
    pub reuse_window: u64,
}

/// The outcome of scheduling one level.
#[derive(Debug, Clone)]
pub struct LevelPlan {
    /// Pipelined level (0 = outermost).
    pub level: usize,
    /// The achieved schedule of the reduced graph.
    pub schedule: ModuloSchedule,
    /// Modelled total cycles for the whole nest.
    pub total_cycles: u64,
    /// Serial length of one slice.
    pub slice_len: u64,
    /// Data-reuse score at this level (higher = more reuse).
    pub reuse: u64,
    /// Whether the saturation bound (machine fully busy) was the binding
    /// constraint — the ideal outcome.
    pub resource_bound: bool,
    /// Largest dependence distance carried at this level (0 = the level is
    /// fully parallel across slices; >0 = partitioning it across threads
    /// needs a wavefront).
    pub max_carried_distance: u64,
}

/// Schedule a single level. Returns `Err` if the level cannot be pipelined.
pub fn schedule_level(
    nest: &LoopNest,
    level: usize,
    cfg: &SspConfig,
) -> Result<LevelPlan, ScheduleError> {
    let ddg = Ddg::for_level(nest, level).ok_or(ScheduleError::ZeroDistanceCycle)?;
    let schedule = modulo_schedule(nest, &ddg, &cfg.resources)?;
    let res_mii = ddg.res_mii(nest, &cfg.resources);

    let n_l = nest.trip_counts[level];
    let outer: u64 = nest.trip_counts[..level].iter().product();
    let inner: u64 = nest.trip_counts[level + 1..].iter().product();

    let body_span = ddg.body_span(nest);
    let inner_ii = ddg.inner_serial_ii().max(res_mii);
    let slice_len = (inner * inner_ii).max(body_span);

    let saturation = n_l * inner * res_mii;
    let path = slice_len + (n_l.saturating_sub(1)) * schedule.ii;
    let per_outer = saturation.max(path);
    let total_cycles = outer * per_outer;

    let reuse = nest
        .deps
        .iter()
        .filter(|d| {
            d.distance[..level].iter().all(|&x| x == 0)
                && d.distance[level] > 0
                && (d.distance[level] as u64) <= cfg.reuse_window.max(1)
        })
        .count() as u64;

    Ok(LevelPlan {
        level,
        schedule,
        total_cycles,
        slice_len,
        reuse,
        resource_bound: saturation >= path,
        max_carried_distance: ddg.edges.iter().map(|e| e.distance).max().unwrap_or(0),
    })
}

/// Schedule every pipelinable level of the nest.
pub fn schedule_all_levels(nest: &LoopNest, cfg: &SspConfig) -> Vec<LevelPlan> {
    (0..nest.depth())
        .filter_map(|l| schedule_level(nest, l, cfg).ok())
        .collect()
}

/// The most profitable level: minimum modelled cycles, data reuse as the
/// tie-break (richer reuse wins), outermost as the final tie-break (cheaper
/// fill/drain amortization).
pub fn select_level(nest: &LoopNest, cfg: &SspConfig) -> Option<LevelPlan> {
    let mut plans = schedule_all_levels(nest, cfg);
    plans.sort_by(|a, b| {
        a.total_cycles
            .cmp(&b.total_cycles)
            .then(b.reuse.cmp(&a.reuse))
            .then(a.level.cmp(&b.level))
    });
    plans.into_iter().next()
}

/// Purely sequential execution estimate (no pipelining): every body
/// instance takes the body's latency sum.
pub fn sequential_cycles(nest: &LoopNest) -> u64 {
    nest.points() * nest.body_latency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LoopNest;

    fn cfg() -> SspConfig {
        SspConfig {
            reuse_window: 4,
            ..Default::default()
        }
    }

    #[test]
    fn matmul_best_level_is_not_innermost() {
        let nest = LoopNest::matmul_like(16, 16, 16);
        let best = select_level(&nest, &cfg()).unwrap();
        assert_ne!(best.level, 2, "innermost carries the acc recurrence");
        let inner = schedule_level(&nest, 2, &cfg()).unwrap();
        assert!(
            best.total_cycles < inner.total_cycles,
            "SSP best {} must beat innermost {}",
            best.total_cycles,
            inner.total_cycles
        );
        assert!(best.resource_bound, "SSP should reach the resource bound");
    }

    #[test]
    fn matmul_speedup_is_substantial() {
        let nest = LoopNest::matmul_like(16, 16, 16);
        let best = select_level(&nest, &cfg()).unwrap();
        let inner = schedule_level(&nest, 2, &cfg()).unwrap();
        let speedup = inner.total_cycles as f64 / best.total_cycles as f64;
        assert!(speedup > 1.5, "expected >1.5×, got {speedup:.2}×");
        // And both beat sequential issue.
        assert!(best.total_cycles < sequential_cycles(&nest));
    }

    #[test]
    fn stencil_selection_is_saturation_and_reuse_driven() {
        // With a long space extent both levels reach the single-unit
        // saturation bound; reuse (short time-carried distances) breaks the
        // tie toward the time level — Rong's data-locality objective.
        let nest = LoopNest::stencil_like(16, 256);
        let plans = schedule_all_levels(&nest, &cfg());
        assert_eq!(plans.len(), 2);
        let best = select_level(&nest, &cfg()).unwrap();
        for p in &plans {
            assert!(best.total_cycles <= p.total_cycles);
        }
        assert_eq!(best.level, 0);
        assert!(best.reuse >= 1, "time level reuses distance-1 values");
        // The space level is the one with no carried dependence (free to
        // partition across threads without a wavefront).
        let space = plans.iter().find(|p| p.level == 1).unwrap();
        assert_eq!(space.max_carried_distance, 0);
        assert!(best.max_carried_distance > 0);
    }

    #[test]
    fn elementwise_all_levels_close() {
        let nest = LoopNest::elementwise(64, 64);
        let plans = schedule_all_levels(&nest, &cfg());
        assert_eq!(plans.len(), 2);
        let best = plans.iter().map(|p| p.total_cycles).min().unwrap();
        let worst = plans.iter().map(|p| p.total_cycles).max().unwrap();
        assert!(
            worst as f64 / best as f64 <= 1.2,
            "parallel nest: levels within 20% ({best} vs {worst})"
        );
    }

    #[test]
    fn model_degenerates_to_classic_formula_innermost() {
        let nest = LoopNest::matmul_like(4, 4, 64);
        let p = schedule_level(&nest, 2, &cfg()).unwrap();
        // Innermost: outer = 16, inner = 1, II = 5 (recurrence), slice =
        // body span = 10, resMII = 2; the path bound dominates:
        // 16 × (10 + 63×5) = 16 × 325.
        assert_eq!(p.schedule.ii, 5);
        assert_eq!(p.slice_len, 10);
        assert_eq!(p.total_cycles, 16 * (10 + 63 * 5));
        assert!(!p.resource_bound);
    }

    #[test]
    fn reuse_score_counts_short_distances() {
        let nest = LoopNest::stencil_like(8, 64);
        // Time level: deps at distance 1 within window.
        let p0 = schedule_level(&nest, 0, &cfg()).unwrap();
        assert!(p0.reuse >= 1);
        // Space level: the only space-carried dep is (1,1), whose outer
        // component ≠ 0 → no reuse counted at level 1.
        let p1 = schedule_level(&nest, 1, &cfg()).unwrap();
        assert_eq!(p1.reuse, 0);
    }

    #[test]
    fn bigger_trip_counts_amortize_fill_drain() {
        let short = LoopNest::matmul_like(2, 16, 16);
        let long = LoopNest::matmul_like(64, 16, 16);
        let ps = select_level(&short, &cfg()).unwrap();
        let pl = select_level(&long, &cfg()).unwrap();
        // Cycles per iteration point should not grow with trip count.
        let per_short = ps.total_cycles as f64 / short.points() as f64;
        let per_long = pl.total_cycles as f64 / long.points() as f64;
        assert!(per_long <= per_short * 1.05);
    }
}
