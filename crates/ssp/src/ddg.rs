//! The reduced data-dependence graph for one pipelined level, and the two
//! classic lower bounds on the initiation interval.
//!
//! When level `ℓ` of the nest is selected for pipelining, each dependence
//! reduces to a 1-D distance:
//!
//! * components *outer* than `ℓ` nonzero → the dependence is satisfied by
//!   the sequential execution of the outer loops; it drops out;
//! * otherwise the effective distance is the component at `ℓ` (inner
//!   components are satisfied within one slice, which executes its inner
//!   iterations sequentially — they become intra-iteration ordering,
//!   distance 0).
//!
//! recMII is the maximum over dependence cycles of
//! `⌈Σdelay / Σdistance⌉`; resMII is `⌈ops-per-class / units-per-class⌉`.

use std::collections::BTreeMap;

use crate::ir::{LoopNest, OpKind};
use crate::modulo::Resources;

/// An edge of the reduced DDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source op.
    pub from: usize,
    /// Sink op.
    pub to: usize,
    /// Cycles the sink must wait after the source issues.
    pub delay: u32,
    /// Iteration distance along the pipelined level (≥ 0).
    pub distance: u64,
}

/// Reduced DDG for one level.
#[derive(Debug, Clone)]
pub struct Ddg {
    /// Number of ops.
    pub n_ops: usize,
    /// Inter-slice edges (constrain the pipeline across `ℓ`-iterations).
    pub edges: Vec<Edge>,
    /// Dependences carried strictly inside the pipelined level: satisfied
    /// by the sequential execution of inner loops within one slice. They do
    /// not constrain the pipeline, but they serialize the slice internally
    /// — see [`Ddg::inner_serial_ii`].
    pub inner_carried: Vec<Edge>,
}

/// The two MII lower bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiiBounds {
    /// Recurrence-constrained bound.
    pub rec_mii: u64,
    /// Resource-constrained bound.
    pub res_mii: u64,
}

impl MiiBounds {
    /// The effective bound.
    pub fn mii(&self) -> u64 {
        self.rec_mii.max(self.res_mii).max(1)
    }
}

impl Ddg {
    /// Build the reduced DDG of `nest` for pipelined `level`.
    ///
    /// Returns `None` if some dependence would be violated by pipelining
    /// this level (negative effective distance with zero outer components —
    /// cannot happen for lexicographically positive vectors, but inner
    /// negative components can produce it).
    pub fn for_level(nest: &LoopNest, level: usize) -> Option<Ddg> {
        let mut edges = Vec::new();
        let mut inner_carried = Vec::new();
        for d in &nest.deps {
            // Outer-carried (levels 0..level): satisfied sequentially.
            if d.distance[..level].iter().any(|&x| x != 0) {
                continue;
            }
            let dist = d.distance[level];
            if dist < 0 {
                return None;
            }
            let edge = Edge {
                from: d.from,
                to: d.to,
                delay: nest.ops[d.from].latency,
                distance: dist as u64,
            };
            let inner_nonzero = d.distance[level + 1..].iter().any(|&x| x != 0);
            if dist == 0 && inner_nonzero {
                // Carried strictly inside the slice: sequential inner
                // execution satisfies it.
                inner_carried.push(edge);
            } else {
                edges.push(edge);
            }
        }
        // A true zero-distance self-edge (same iteration point) means the
        // body can never issue.
        if edges.iter().any(|e| e.from == e.to && e.distance == 0) {
            return None;
        }
        Some(Ddg {
            n_ops: nest.ops.len(),
            edges,
            inner_carried,
        })
    }

    /// The serial initiation interval *inside* one slice imposed by
    /// inner-carried recurrences: consecutive inner iterations cannot issue
    /// closer than the longest inner-carried delay (a conservative stand-in
    /// for per-cycle analysis of the inner graph).
    pub fn inner_serial_ii(&self) -> u64 {
        self.inner_carried
            .iter()
            .map(|e| e.delay as u64)
            .max()
            .unwrap_or(0)
    }

    /// Longest delay chain through loop-independent edges — the length of
    /// one body instance under infinite resources (acyclic by validity).
    pub fn body_span(&self, nest: &LoopNest) -> u64 {
        let n = self.n_ops;
        // finish[i] = earliest completion of op i; distance-0 edges form a
        // DAG, so n relaxation rounds converge (graphs here are tiny).
        let mut finish: Vec<u64> = nest.ops.iter().map(|o| o.latency as u64).collect();
        for _ in 0..n {
            for e in self.edges.iter().filter(|e| e.distance == 0) {
                let cand = finish[e.from] + nest.ops[e.to].latency as u64;
                if cand > finish[e.to] {
                    finish[e.to] = cand;
                }
            }
        }
        finish.into_iter().max().unwrap_or(0)
    }

    /// Resource-constrained MII for the given resource mix.
    pub fn res_mii(&self, nest: &LoopNest, res: &Resources) -> u64 {
        let mut per_kind: BTreeMap<OpKind, u64> = BTreeMap::new();
        for op in &nest.ops {
            *per_kind.entry(op.kind).or_insert(0) += 1;
        }
        per_kind
            .iter()
            .map(|(k, &count)| count.div_ceil(res.units(*k).max(1) as u64))
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// Recurrence-constrained MII: maximum over elementary cycles of
    /// `⌈Σdelay / Σdistance⌉`. Uses a binary search on II with a
    /// longest-path feasibility test (Bellman–Ford on `delay − II·dist`):
    /// II is feasible iff no positive cycle exists.
    pub fn rec_mii(&self) -> u64 {
        // Upper bound: sum of all delays (a cycle's delay can't exceed it).
        let hi0: u64 = self
            .edges
            .iter()
            .map(|e| e.delay as u64)
            .sum::<u64>()
            .max(1);
        let mut lo = 1u64;
        let mut hi = hi0;
        if !self.has_positive_cycle(lo) {
            return 1;
        }
        // Find feasible hi.
        while self.has_positive_cycle(hi) {
            hi *= 2;
            if hi > (1 << 32) {
                // Zero-distance cycle: no II makes it legal.
                return u64::MAX;
            }
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.has_positive_cycle(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// True if, with initiation interval `ii`, some dependence cycle has
    /// positive total weight `Σ(delay − ii·distance)` — i.e. the II is too
    /// small.
    fn has_positive_cycle(&self, ii: u64) -> bool {
        // Bellman-Ford longest-path with n rounds; weights are small.
        let n = self.n_ops;
        if n == 0 {
            return false;
        }
        let mut dist = vec![0i128; n];
        for round in 0..=n {
            let mut changed = false;
            for e in &self.edges {
                let w = e.delay as i128 - (ii as i128) * (e.distance as i128);
                if dist[e.from] + w > dist[e.to] {
                    dist[e.to] = dist[e.from] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == n {
                return true;
            }
        }
        false
    }

    /// Both bounds.
    pub fn mii(&self, nest: &LoopNest, res: &Resources) -> MiiBounds {
        MiiBounds {
            rec_mii: self.rec_mii(),
            res_mii: self.res_mii(nest, res),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LoopNest;

    fn default_res() -> Resources {
        Resources::default()
    }

    #[test]
    fn matmul_innermost_carries_recurrence() {
        let nest = LoopNest::matmul_like(8, 8, 8);
        let inner = Ddg::for_level(&nest, 2).unwrap();
        // acc->acc, delay 5, distance 1 → recMII ≥ 5.
        assert_eq!(inner.rec_mii(), 5);
        // Middle/outer levels: the k-recurrence is carried strictly inside
        // the slice — it moves to `inner_carried` and the inter-slice graph
        // becomes recurrence-free.
        for level in 0..2 {
            let g = Ddg::for_level(&nest, level).unwrap();
            assert_eq!(g.rec_mii(), 1, "level {level}");
            assert_eq!(g.inner_carried.len(), 1);
            assert_eq!(g.inner_serial_ii(), 5);
        }
        // The innermost slice has no inner loops, so nothing is
        // inner-carried there.
        assert_eq!(inner.inner_carried.len(), 0);
        assert_eq!(inner.inner_serial_ii(), 0);
    }

    #[test]
    fn body_span_is_critical_path() {
        let nest = LoopNest::matmul_like(4, 4, 4);
        let g = Ddg::for_level(&nest, 2).unwrap();
        // load(4) -> fma(5) -> store(1) = 10.
        assert_eq!(g.body_span(&nest), 10);
    }

    #[test]
    fn elementwise_is_unconstrained() {
        let nest = LoopNest::elementwise(8, 8);
        for level in 0..2 {
            let g = Ddg::for_level(&nest, level).unwrap();
            assert_eq!(g.rec_mii(), 1, "level {level}");
        }
    }

    #[test]
    fn stencil_time_level_constrained_space_level_free() {
        let nest = LoopNest::stencil_like(8, 64);
        let time = Ddg::for_level(&nest, 0).unwrap();
        // Cycle store->load(mid)->blend->store: delays 1+4+6 = 11 over
        // distance 1 → recMII ≥ 11.
        assert!(time.rec_mii() >= 11, "recMII(time) = {}", time.rec_mii());
        let space = Ddg::for_level(&nest, 1).unwrap();
        // At the space level the t-carried deps drop (outer component ≠ 0).
        assert_eq!(space.rec_mii(), 1);
    }

    #[test]
    fn res_mii_counts_unit_pressure() {
        let nest = LoopNest::matmul_like(4, 4, 4);
        let g = Ddg::for_level(&nest, 2).unwrap();
        // 3 Mem ops on 2 ports → ⌈3/2⌉ = 2; 1 Fpu op on 1 unit → 1.
        let res = default_res();
        assert_eq!(g.res_mii(&nest, &res), 2);
        let bounds = g.mii(&nest, &res);
        assert_eq!(bounds.mii(), 5); // recurrence dominates
    }

    #[test]
    fn rec_mii_binary_search_matches_hand_value() {
        // Two-node cycle: a->b delay 3 dist 0; b->a delay 7 dist 2.
        // recMII = ceil((3+7)/2) = 5.
        let g = Ddg {
            n_ops: 2,
            inner_carried: vec![],
            edges: vec![
                Edge {
                    from: 0,
                    to: 1,
                    delay: 3,
                    distance: 0,
                },
                Edge {
                    from: 1,
                    to: 0,
                    delay: 7,
                    distance: 2,
                },
            ],
        };
        assert_eq!(g.rec_mii(), 5);
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one() {
        let g = Ddg {
            n_ops: 3,
            inner_carried: vec![],
            edges: vec![
                Edge {
                    from: 0,
                    to: 1,
                    delay: 10,
                    distance: 0,
                },
                Edge {
                    from: 1,
                    to: 2,
                    delay: 10,
                    distance: 0,
                },
            ],
        };
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn zero_distance_cycle_is_rejected_at_build() {
        let mut nest = LoopNest::elementwise(4, 4);
        // Add op0 -> op0 loop-independent self-dep: illegal to pipeline.
        nest.deps.push(crate::ir::Dep::independent(0, 0, 2));
        assert!(Ddg::for_level(&nest, 0).is_none());
    }
}
