//! Loop-nest intermediate representation.
//!
//! A [`LoopNest`] is a perfect nest of `depth` loops with per-level trip
//! counts, one shared body of [`Op`]s, and [`Dep`]endences with full
//! distance vectors (one component per level, outermost first) — exactly
//! the information SSP needs to schedule any level.

/// Functional-unit class an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Integer/branch ALU.
    Alu,
    /// Floating-point multiply-add pipe.
    Fpu,
    /// Load/store port.
    Mem,
}

impl OpKind {
    /// All functional-unit classes.
    pub const ALL: [OpKind; 3] = [OpKind::Alu, OpKind::Fpu, OpKind::Mem];
}

/// One operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Human-readable name, e.g. `"load a[i][k]"`.
    pub name: String,
    /// Result latency in cycles.
    pub latency: u32,
    /// Functional unit it occupies (for one cycle — fully pipelined units).
    pub kind: OpKind,
}

impl Op {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, latency: u32, kind: OpKind) -> Self {
        Self {
            name: name.into(),
            latency,
            kind,
        }
    }
}

/// A dependence between two body operations with a distance vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Source op index.
    pub from: usize,
    /// Sink op index.
    pub to: usize,
    /// Distance vector, outermost level first; all zeros = loop-independent.
    pub distance: Vec<i64>,
}

impl Dep {
    /// Loop-independent dependence (same iteration).
    pub fn independent(from: usize, to: usize, depth: usize) -> Self {
        Self {
            from,
            to,
            distance: vec![0; depth],
        }
    }

    /// Dependence carried at one level with distance 1.
    pub fn carried_at(from: usize, to: usize, depth: usize, level: usize) -> Self {
        let mut d = vec![0; depth];
        d[level] = 1;
        Self {
            from,
            to,
            distance: d,
        }
    }
}

/// A perfect loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Name for reports.
    pub name: String,
    /// Trip count per level, outermost first.
    pub trip_counts: Vec<u64>,
    /// Body operations.
    pub ops: Vec<Op>,
    /// Dependences between body ops.
    pub deps: Vec<Dep>,
}

impl LoopNest {
    /// Number of loop levels.
    pub fn depth(&self) -> usize {
        self.trip_counts.len()
    }

    /// Total iteration points.
    pub fn points(&self) -> u64 {
        self.trip_counts.iter().product()
    }

    /// Sum of body-op latencies — the sequential length of one body
    /// instance under unit issue.
    pub fn body_latency(&self) -> u64 {
        self.ops.iter().map(|o| o.latency as u64).sum()
    }

    /// Validate op indices and distance-vector arity; lexicographic
    /// positivity of carried dependences (a legal sequential program cannot
    /// depend on the future).
    pub fn validate(&self) -> Result<(), String> {
        for (i, d) in self.deps.iter().enumerate() {
            if d.from >= self.ops.len() || d.to >= self.ops.len() {
                return Err(format!("dep {i}: op index out of range"));
            }
            if d.distance.len() != self.depth() {
                return Err(format!(
                    "dep {i}: distance vector arity {} ≠ nest depth {}",
                    d.distance.len(),
                    self.depth()
                ));
            }
            if let Some(first) = d.distance.iter().find(|&&x| x != 0) {
                if *first < 0 {
                    return Err(format!(
                        "dep {i}: lexicographically negative distance {:?}",
                        d.distance
                    ));
                }
            }
        }
        if self.trip_counts.contains(&0) {
            return Err("zero trip count".to_string());
        }
        Ok(())
    }

    /// A matmul-style nest `for i / for j / for k: c[i][j] += a[i][k] *
    /// b[k][j]`: two loads, one FMA, one accumulate carried by `k` (the
    /// innermost level), one store. The accumulate recurrence is what makes
    /// innermost-only pipelining slow and SSP shine — the paper's §3.3
    /// motivating shape.
    pub fn matmul_like(ni: u64, nj: u64, nk: u64) -> LoopNest {
        let ops = vec![
            Op::new("load a[i][k]", 4, OpKind::Mem),
            Op::new("load b[k][j]", 4, OpKind::Mem),
            Op::new("fma acc", 5, OpKind::Fpu),
            Op::new("store c[i][j]", 1, OpKind::Mem),
        ];
        let deps = vec![
            Dep::independent(0, 2, 3),
            Dep::independent(1, 2, 3),
            // acc -> acc carried by k: the reduction recurrence.
            Dep::carried_at(2, 2, 3, 2),
            Dep::independent(2, 3, 3),
        ];
        LoopNest {
            name: "matmul-like".to_string(),
            trip_counts: vec![ni, nj, nk],
            ops,
            deps,
        }
    }

    /// A 1-D Jacobi-style stencil nest `for t / for i: a[i] = f(a[i-1],
    /// a[i], a[i+1])`: the time level carries all dependences; the space
    /// level is parallel except for a distance-1 flow from the left
    /// neighbour of the *previous* time step.
    pub fn stencil_like(nt: u64, ni: u64) -> LoopNest {
        let ops = vec![
            Op::new("load left", 4, OpKind::Mem),
            Op::new("load mid", 4, OpKind::Mem),
            Op::new("load right", 4, OpKind::Mem),
            Op::new("blend", 6, OpKind::Fpu),
            Op::new("store", 1, OpKind::Mem),
        ];
        let deps = vec![
            Dep::independent(0, 3, 2),
            Dep::independent(1, 3, 2),
            Dep::independent(2, 3, 2),
            Dep::independent(3, 4, 2),
            // store -> loads of the next time step (carried by t).
            Dep {
                from: 4,
                to: 1,
                distance: vec![1, 0],
            },
            Dep {
                from: 4,
                to: 0,
                distance: vec![1, 1],
            },
        ];
        LoopNest {
            name: "stencil-like".to_string(),
            trip_counts: vec![nt, ni],
            ops,
            deps,
        }
    }

    /// A fully parallel 2-D nest (element-wise update): no carried
    /// dependences at all; every level pipelines equally well — a control
    /// case for level selection.
    pub fn elementwise(ni: u64, nj: u64) -> LoopNest {
        let ops = vec![
            Op::new("load x", 4, OpKind::Mem),
            Op::new("mul", 5, OpKind::Fpu),
            Op::new("store y", 1, OpKind::Mem),
        ];
        let deps = vec![Dep::independent(0, 1, 2), Dep::independent(1, 2, 2)];
        LoopNest {
            name: "elementwise".to_string(),
            trip_counts: vec![ni, nj],
            ops,
            deps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shape() {
        let n = LoopNest::matmul_like(4, 5, 6);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.points(), 120);
        assert!(n.validate().is_ok());
        assert_eq!(n.body_latency(), 4 + 4 + 5 + 1);
    }

    #[test]
    fn validate_catches_bad_indices() {
        let mut n = LoopNest::elementwise(2, 2);
        n.deps.push(Dep::independent(0, 99, 2));
        assert!(n.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let mut n = LoopNest::elementwise(2, 2);
        n.deps.push(Dep {
            from: 0,
            to: 1,
            distance: vec![0],
        });
        assert!(n.validate().unwrap_err().contains("arity"));
    }

    #[test]
    fn validate_catches_negative_distance() {
        let mut n = LoopNest::elementwise(2, 2);
        n.deps.push(Dep {
            from: 0,
            to: 1,
            distance: vec![-1, 2],
        });
        assert!(n.validate().unwrap_err().contains("negative"));
    }

    #[test]
    fn validate_catches_zero_trip() {
        let mut n = LoopNest::elementwise(2, 2);
        n.trip_counts[0] = 0;
        assert!(n.validate().is_err());
    }

    #[test]
    fn helper_constructors() {
        let d = Dep::carried_at(1, 2, 3, 1);
        assert_eq!(d.distance, vec![0, 1, 0]);
        let d = Dep::independent(0, 1, 2);
        assert_eq!(d.distance, vec![0, 0]);
    }
}
