//! # htvm-ssp — software pipelining for HTVM loop nests
//!
//! §3.3 of Gao et al. (IPDPS 2006) builds its loop-parallelism story on
//! **Single-dimension Software Pipelining** (SSP, Rong et al., CGO 2004):
//! instead of software-pipelining only the innermost loop (classic modulo
//! scheduling), choose "the most profitable loop level" of the nest,
//! software-pipeline *that* level, and then "partition the software
//! pipelined code into threads" to exploit instruction-level and
//! thread-level parallelism simultaneously.
//!
//! This crate implements the whole chain:
//!
//! * [`ir`] — loop-nest IR: trip counts per level, operations with
//!   latencies and resource classes, dependences with distance vectors;
//! * [`ddg`] — the reduced data-dependence graph for a chosen level, with
//!   the two classic lower bounds **recMII** (recurrence-constrained) and
//!   **resMII** (resource-constrained);
//! * [`modulo`] — iterative modulo scheduling (Rau's algorithm: II search,
//!   height-based priority, modulo reservation table);
//! * [`ssp`] — per-level scheduling, the execution-time model
//!   `outer × (Nℓ + S − 1) × II × inner`, and most-profitable-level
//!   selection (cycles first, data reuse as tie-break);
//! * [`partition`] — the paper's proposed SSP→threads extension: groups of
//!   `ℓ`-level iterations become SGTs; cross-group dependences form a
//!   signal wavefront; runnable both as a cost model and on the `htvm-sim`
//!   machine;
//! * [`exec`] — the native back end: a [`partition::PartitionPlan`] runs on
//!   the `htvm_core` work-stealing pool, iteration groups spawned as
//!   SGT-grain jobs placed round-robin across locality domains, with
//!   cross-group dependences enforced by a `SyncSlot` signal wavefront.
//!
//! ```
//! use htvm_ssp::ir::LoopNest;
//! use htvm_ssp::ssp::schedule_all_levels;
//!
//! // c[i][j] += a[i][k] * b[k][j] — reduction carried by the innermost k.
//! let nest = LoopNest::matmul_like(16, 16, 16);
//! let plans = schedule_all_levels(&nest, &Default::default());
//! let best = plans.iter().min_by_key(|p| p.total_cycles).unwrap();
//! // The innermost level carries the recurrence, so the best level is not
//! // the innermost one.
//! assert_ne!(best.level, nest.depth() - 1);
//! ```

pub mod ddg;
pub mod exec;
pub mod ir;
pub mod modulo;
pub mod partition;
pub mod ssp;

pub use ddg::{Ddg, MiiBounds};
pub use exec::{plan_native, plan_native_nest, run_partitioned, ExecReport, NestExecPlan};
pub use ir::{Dep, LoopNest, Op, OpKind};
pub use modulo::{modulo_schedule, ModuloSchedule, Resources, ScheduleError};
pub use partition::{PartitionPlan, ThreadedSspModel};
pub use ssp::{schedule_all_levels, select_level, LevelPlan, SspConfig};
