//! Native execution of a partitioned SSP plan — the missing back half of
//! §3.3's "partition the software pipelined code into threads".
//!
//! [`run_partitioned`] takes a rectangular loop nest (trip counts), a
//! pipelined level `ℓ`, a [`PartitionPlan`], and a *point body* (a closure
//! executing one iteration point given its full index vector), and runs it
//! on the native [`Pool`]:
//!
//! * levels outer to `ℓ` execute sequentially — each outer index tuple is
//!   one **wave**, joined before the next starts (outer-carried
//!   dependences are satisfied by construction);
//! * the `N_ℓ` iterations of level `ℓ` split into the plan's contiguous
//!   **groups**; each group runs its `ℓ`-range (with all inner levels
//!   sequential inside it) as one SGT-grain pool job, placed round-robin
//!   across the pool's locality domains;
//! * if the plan has a **wavefront** (a dependence carried at `ℓ`), groups
//!   are chained through [`SyncSlot`]s: group `t+1` is enabled by the
//!   signal group `t` delivers on completion — the conservative reading of
//!   the paper's "group t+1 may only start its first d iterations after
//!   group t finishes its last".
//!
//! The caller **helps**: while a wave is in flight it keeps claiming
//! enabled groups from the ready queue, so execution completes even on a
//! single-worker pool (the spawned pool jobs then drain as no-ops). This
//! is the same help-first discipline the LITL-X naive `forall` uses.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm_core::{DomainId, Pool, SyncSlot};
use parking_lot::Mutex;

use crate::partition::PartitionPlan;
use crate::ssp::{schedule_all_levels, LevelPlan, SspConfig};

/// One iteration point of the nest: receives the full index vector
/// (outermost level first; absolute at the partitioned level if a nonzero
/// `level_lo` was given, 0-based elsewhere). Errors abort the run after
/// the wave in flight; a **panic** is caught and surfaces the same way
/// (as the wave's `Err`), never as a hang or an unwinding caller.
pub type PointBody = dyn Fn(&[i64]) -> Result<(), String> + Send + Sync;

/// One contiguous **run** of the nest's innermost level: receives the
/// index vector of every level but the innermost (`prefix`, same
/// absolute/0-based convention as [`PointBody`]) plus the half-open
/// innermost range `t0..t1`, and iterates internally. Run-at-a-time
/// bodies amortize per-point dispatch — a compiled kernel borrows its
/// scratch once per run and walks strided indices instead of
/// re-evaluating affine forms. Errors and panics surface exactly as for
/// [`PointBody`].
pub type RunBody = dyn Fn(&[i64], i64, i64) -> Result<(), String> + Send + Sync;

/// The two granularities a partitioned nest can execute at.
#[derive(Clone)]
pub enum NestBody {
    /// Call the body once per iteration point.
    Point(Arc<PointBody>),
    /// Hand the body contiguous innermost runs (see [`RunBody`]).
    Run(Arc<RunBody>),
}

/// What happened during a partitioned native run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecReport {
    /// The partitioned (pipelined) level.
    pub level: usize,
    /// Groups per wave.
    pub groups: u64,
    /// Waves executed (product of the outer trip counts).
    pub waves: u64,
    /// Whether groups were chained through a signal wavefront.
    pub wavefront: bool,
    /// Iteration points executed.
    pub points: u64,
    /// Innermost runs handed to a [`RunBody`] (0 for point-at-a-time).
    pub runs: u64,
    /// Pool jobs spawned (one per group per wave).
    pub spawned: u64,
    /// Groups executed by the helping caller rather than a pool worker.
    pub caller_ran: u64,
    /// Intended locality-domain placement, one entry per group (round-robin
    /// over the pool's domains; also recorded in
    /// [`htvm_core::PoolStats::domain_spawns`]).
    pub group_domains: Vec<u64>,
}

/// A level choice plus its thread partition, ready to execute.
#[derive(Debug, Clone)]
pub struct NestExecPlan {
    /// The schedule of the chosen level.
    pub level_plan: LevelPlan,
    /// The split of that level's iterations into thread groups.
    pub partition: PartitionPlan,
}

/// Choose the level to partition for native execution, restricted to
/// `allowed_levels` (e.g. the `forall` levels of a LITL-X nest — a
/// sequential `for` level must not be parallelized by fiat).
///
/// Preference order: wavefront-free levels first (a carried dependence
/// serializes adjacent groups), then minimum modelled cycles, then
/// outermost. Returns `None` if no allowed level can be pipelined.
pub fn plan_native(
    trip_counts: &[u64],
    plans: &[LevelPlan],
    allowed_levels: &[usize],
    threads: u64,
) -> Option<NestExecPlan> {
    let best = plans
        .iter()
        .filter(|p| allowed_levels.contains(&p.level))
        .min_by_key(|p| (p.max_carried_distance > 0, p.total_cycles, p.level))?;
    let partition = PartitionPlan::new(best, trip_counts[best.level], threads);
    Some(NestExecPlan {
        level_plan: best.clone(),
        partition,
    })
}

/// [`plan_native`] over freshly scheduled levels of `nest`.
pub fn plan_native_nest(
    nest: &crate::ir::LoopNest,
    cfg: &SspConfig,
    allowed_levels: &[usize],
    threads: u64,
) -> Option<NestExecPlan> {
    let plans = schedule_all_levels(nest, cfg);
    plan_native(&nest.trip_counts, &plans, allowed_levels, threads)
}

/// One wave's state, shared by the helping caller and the spawned pool
/// jobs. Owns the full geometry so pool jobs need no borrows.
struct Wave {
    // Geometry.
    outer: Vec<i64>,
    inner_counts: Vec<u64>,
    level: usize,
    depth: usize,
    group_ranges: Vec<(u64, u64)>,
    lo: i64,
    body: NestBody,
    // Scheduling.
    ready: Mutex<VecDeque<u64>>,
    /// Chain slots (`slots[g]` enables group `g`); filled before the wave
    /// is released. The slot actions hold the `Wave` in an `Arc` cycle
    /// that resolves once every slot has fired (every group is always
    /// enabled, even on error, so no wave leaks).
    slots: Mutex<Vec<Arc<SyncSlot>>>,
    finished: AtomicU64,
    error: Mutex<Option<String>>,
    points: AtomicU64,
    runs: AtomicU64,
    caller_ran: AtomicU64,
}

/// Completion bookkeeping for one claimed group, run from `Drop` so it
/// happens **even when the group's body unwinds**: the successor slot is
/// signalled and `finished` is incremented no matter how the group ends.
/// Without this, a panicking [`PointBody`] on a pool worker would be
/// contained by the pool's `catch_unwind` while the wave never learns the
/// group died — `run_partitioned`'s help loop then livelocks forever on
/// `finished < num_groups`.
struct GroupDone<'a> {
    wave: &'a Arc<Wave>,
    group: u64,
    by_caller: bool,
}

impl Drop for GroupDone<'_> {
    fn drop(&mut self) {
        if self.by_caller {
            self.wave.caller_ran.fetch_add(1, Ordering::Relaxed);
        }
        // Enable the successor (wavefront chains only; parallel waves have
        // every slot released up front). A dead group must still signal,
        // or the rest of the chain starves behind it.
        let next = self.wave.slots.lock().get(self.group as usize + 1).cloned();
        if let Some(s) = next {
            s.signal();
        }
        self.wave.finished.fetch_add(1, Ordering::Release);
    }
}

/// Best-effort text of a panic payload (the common `&str`/`String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

impl Wave {
    /// Claim one enabled group. Returns `false` if none is ready.
    ///
    /// Panic-safe: the body runs under `catch_unwind`, a panic is recorded
    /// as the wave's error, and the [`GroupDone`] drop guard performs the
    /// completion bookkeeping on every exit path — so neither a panicking
    /// body nor an unwinding caller can wedge the wave. Because the panic
    /// is caught *here*, it never reaches the pool's own containment:
    /// `PoolStats::panics` deliberately stays at zero for SSP body panics
    /// — the wave's `Err("group N panicked: …")` is their reporting
    /// channel, and the pool counter keeps meaning "panics that escaped a
    /// job unhandled".
    fn try_run_one(self: &Arc<Self>, by_caller: bool) -> bool {
        let Some(g) = self.ready.lock().pop_front() else {
            return false;
        };
        let _done = GroupDone {
            wave: self,
            group: g,
            by_caller,
        };
        if self.error.lock().is_none() {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute_group(g)))
                    .unwrap_or_else(|p| {
                        Err(format!("group {g} panicked: {}", panic_message(p.as_ref())))
                    });
            if let Err(e) = outcome {
                let mut slot = self.error.lock();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
        true
    }

    /// Run every iteration point of group `g`: its `ℓ`-range, all inner
    /// levels sequential (lexicographic) inside each `ℓ`-iteration. A
    /// [`NestBody::Run`] body receives each innermost span as one call
    /// instead of one call per point.
    fn execute_group(&self, g: u64) -> Result<(), String> {
        match self.body.clone() {
            NestBody::Point(b) => self.execute_group_points(g, &*b),
            NestBody::Run(b) => self.execute_group_runs(g, &*b),
        }
    }

    fn execute_group_points(&self, g: u64, body: &PointBody) -> Result<(), String> {
        let (glo, ghi) = self.group_ranges[g as usize];
        let mut idx = vec![0i64; self.depth];
        idx[..self.level].copy_from_slice(&self.outer);
        let inner_total: u64 = self.inner_counts.iter().product();
        for l in glo..ghi {
            idx[self.level] = self.lo + l as i64;
            for t in 0..inner_total {
                let mut rem = t;
                for (k, &n) in self.inner_counts.iter().enumerate().rev() {
                    idx[self.level + 1 + k] = (rem % n) as i64;
                    rem /= n;
                }
                self.points.fetch_add(1, Ordering::Relaxed);
                body(&idx)?;
            }
        }
        Ok(())
    }

    /// Run-granular traversal of group `g`: the same lexicographic point
    /// order as [`Wave::execute_group_points`], delivered as contiguous
    /// innermost spans. When the partitioned level *is* the innermost
    /// one, each group contributes a single span (its `ℓ`-range);
    /// otherwise every non-innermost index tuple yields one full
    /// innermost span.
    fn execute_group_runs(&self, g: u64, body: &RunBody) -> Result<(), String> {
        let (glo, ghi) = self.group_ranges[g as usize];
        if self.level + 1 == self.depth {
            // The innermost level is partitioned: the group's range is
            // one run, with the wave's outer tuple as the prefix.
            self.points.fetch_add(ghi - glo, Ordering::Relaxed);
            self.runs.fetch_add(1, Ordering::Relaxed);
            return body(&self.outer, self.lo + glo as i64, self.lo + ghi as i64);
        }
        let mid = &self.inner_counts[..self.inner_counts.len() - 1];
        let n_last = *self.inner_counts.last().expect("level < depth - 1");
        let mid_total: u64 = mid.iter().product();
        let mut prefix = vec![0i64; self.depth - 1];
        prefix[..self.level].copy_from_slice(&self.outer);
        for l in glo..ghi {
            prefix[self.level] = self.lo + l as i64;
            for t in 0..mid_total {
                let mut rem = t;
                for (k, &n) in mid.iter().enumerate().rev() {
                    prefix[self.level + 1 + k] = (rem % n) as i64;
                    rem /= n;
                }
                self.points.fetch_add(n_last, Ordering::Relaxed);
                self.runs.fetch_add(1, Ordering::Relaxed);
                body(&prefix, 0, n_last as i64)?;
            }
        }
        Ok(())
    }
}

/// Execute a partitioned nest on the native pool. `trip_counts` describe
/// the rectangular nest (outermost first); `level_lo` is the absolute
/// value of the partitioned level's first iteration (the body sees
/// absolute indices at `level` — callers whose loops start at 0 pass 0).
///
/// Returns the first body error, after finishing the wave in flight. A
/// body that panics (instead of returning `Err`) is caught wherever it
/// ran — helping caller or pool worker — recorded as the wave's error,
/// and still signals its successor group, so the run ends in `Err` rather
/// than livelocking on a group that will never finish.
pub fn run_partitioned(
    pool: &Arc<Pool>,
    trip_counts: &[u64],
    level: usize,
    level_lo: i64,
    part: &PartitionPlan,
    body: Arc<PointBody>,
) -> Result<ExecReport, String> {
    run_partitioned_body(
        pool,
        trip_counts,
        level,
        level_lo,
        part,
        NestBody::Point(body),
    )
}

/// [`run_partitioned`] at either granularity: a [`NestBody::Run`] body
/// receives contiguous innermost spans `(prefix, t0..t1)` instead of
/// single points, with identical traversal order, wavefront chaining,
/// placement and error/panic semantics.
pub fn run_partitioned_body(
    pool: &Arc<Pool>,
    trip_counts: &[u64],
    level: usize,
    level_lo: i64,
    part: &PartitionPlan,
    body: NestBody,
) -> Result<ExecReport, String> {
    if level >= trip_counts.len() {
        return Err(format!(
            "partition level {level} out of range for a depth-{} nest",
            trip_counts.len()
        ));
    }
    let mut report = ExecReport {
        level,
        groups: 0,
        waves: 0,
        wavefront: part.wavefront,
        points: 0,
        runs: 0,
        spawned: 0,
        caller_ran: 0,
        group_domains: Vec::new(),
    };
    if trip_counts.contains(&0) {
        return Ok(report); // nothing to run
    }
    let n_l = trip_counts[level];
    let group_size = part.group.max(1);
    let group_ranges: Vec<(u64, u64)> = (0..n_l.div_ceil(group_size))
        .map(|g| (g * group_size, ((g + 1) * group_size).min(n_l)))
        .collect();
    let num_groups = group_ranges.len() as u64;
    let nd = pool.num_domains() as u64;
    let group_domains: Vec<u64> = (0..num_groups).map(|g| g % nd).collect();
    let waves: u64 = trip_counts[..level].iter().product();
    report.groups = num_groups;
    report.group_domains = group_domains.clone();

    for w in 0..waves {
        // Decompose the wave number into the outer index tuple.
        let mut outer = vec![0i64; level];
        let mut rem = w;
        for (k, &n) in trip_counts[..level].iter().enumerate().rev() {
            outer[k] = (rem % n) as i64;
            rem /= n;
        }
        let wave = Arc::new(Wave {
            outer,
            inner_counts: trip_counts[level + 1..].to_vec(),
            level,
            depth: trip_counts.len(),
            group_ranges: group_ranges.clone(),
            lo: level_lo,
            body: body.clone(),
            ready: Mutex::new(VecDeque::with_capacity(num_groups as usize)),
            slots: Mutex::new(Vec::new()),
            finished: AtomicU64::new(0),
            error: Mutex::new(None),
            points: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            caller_ran: AtomicU64::new(0),
        });
        if part.wavefront {
            // Build the enable slots with one guard signal each, so no
            // group can fire before the whole chain (and its successor
            // slots) is in place. Slot g's action enqueues group g and
            // spawns a pickup job into the group's home domain.
            let slots: Vec<Arc<SyncSlot>> = (0..num_groups)
                .map(|g| {
                    let chain = if g > 0 { 1 } else { 0 };
                    let wv = wave.clone();
                    let pl = pool.clone();
                    let domain = DomainId(group_domains[g as usize]);
                    SyncSlot::with_action(1 + chain, move || {
                        wv.ready.lock().push_back(g);
                        let wv2 = wv.clone();
                        pl.spawn_in(domain, move |_| {
                            // The helping caller may have claimed this
                            // group already; the queue pop decides, so
                            // nothing runs twice and late pickups are
                            // no-ops.
                            wv2.try_run_one(false);
                        });
                    })
                })
                .collect();
            *wave.slots.lock() = slots.clone();
            // Release the guard signals: group 0 becomes ready; the rest
            // of the chain fires as predecessors finish.
            for s in &slots {
                s.signal();
            }
        } else {
            // No wavefront: every group is ready at once — enqueue them
            // all and batch-spawn the pickup jobs (the batch delivers at
            // most one targeted wake per job, grouped by home domain).
            {
                let mut q = wave.ready.lock();
                q.extend(0..num_groups);
            }
            pool.spawn_batch_in((0..num_groups).map(|g| {
                let wv = wave.clone();
                let job = move |_: &htvm_core::WorkerCtx<'_>| {
                    wv.try_run_one(false);
                };
                (DomainId(group_domains[g as usize]), job)
            }));
        }
        report.spawned += num_groups;
        // Help until the wave drains — never block: the caller may *be* a
        // pool worker (the LITL-X interpreter runs inside an LGT job), and
        // parking it on a single-worker pool would deadlock the wave.
        while wave.finished.load(Ordering::Acquire) < num_groups {
            if !wave.try_run_one(true) {
                std::thread::yield_now();
            }
        }
        report.waves += 1;
        report.caller_ran += wave.caller_ran.load(Ordering::Relaxed);
        report.points += wave.points.load(Ordering::Relaxed);
        report.runs += wave.runs.load(Ordering::Relaxed);
        let err = wave.error.lock().clone();
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LoopNest;
    use htvm_core::Topology;
    use std::sync::atomic::AtomicBool;

    fn pool(topo: Topology) -> Arc<Pool> {
        Arc::new(Pool::with_topology(topo))
    }

    /// Every point of a parallel 2-D nest runs exactly once.
    #[test]
    fn parallel_nest_covers_every_point_once() {
        let nest = LoopNest::elementwise(8, 6);
        let plan = plan_native_nest(&nest, &SspConfig::default(), &[0, 1], 4).unwrap();
        assert!(!plan.partition.wavefront);
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..48).map(|_| AtomicU64::new(0)).collect());
        let s2 = seen.clone();
        let body: Arc<PointBody> = Arc::new(move |idx| {
            s2[(idx[0] * 6 + idx[1]) as usize].fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let p = pool(Topology::domains(2, 2));
        let level = plan.level_plan.level;
        let rep = run_partitioned(&p, &nest.trip_counts, level, 0, &plan.partition, body).unwrap();
        p.wait_quiescent();
        assert_eq!(rep.points, 48);
        assert!(rep.groups >= 2);
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::SeqCst),
                1,
                "point {i} ran a wrong number of times"
            );
        }
        // Placement is round-robin over the 2 domains.
        assert!(rep.group_domains.contains(&0));
        assert!(rep.group_domains.contains(&1));
        assert_eq!(p.stats().total_domain_spawns(), rep.spawned);
    }

    /// A dependence carried at the partitioned level runs as a wavefront:
    /// each level-iteration observes its predecessor's write.
    #[test]
    fn wavefront_respects_carried_dependence() {
        let nest = LoopNest::stencil_like(16, 4);
        // Partition the *time* level (0): it carries the recurrence.
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let plan = plans.iter().find(|p| p.level == 0).unwrap();
        let part = PartitionPlan::new(plan, 16, 4);
        assert!(part.wavefront);
        let flags: Arc<Vec<AtomicBool>> =
            Arc::new((0..16).map(|_| AtomicBool::new(false)).collect());
        let f2 = flags.clone();
        let body: Arc<PointBody> = Arc::new(move |idx| {
            let t = idx[0] as usize;
            if t > 0 && !f2[t - 1].load(Ordering::SeqCst) {
                return Err(format!("iteration {t} ran before {}", t - 1));
            }
            if idx[1] == 3 {
                f2[t].store(true, Ordering::SeqCst);
            }
            Ok(())
        });
        let p = pool(Topology::domains(2, 2));
        let rep = run_partitioned(&p, &nest.trip_counts, 0, 0, &part, body).unwrap();
        p.wait_quiescent();
        assert!(rep.wavefront);
        assert_eq!(rep.points, 64);
        assert_eq!(rep.groups, 4);
    }

    /// Outer levels run as sequentially joined waves.
    #[test]
    fn outer_levels_execute_as_sequential_waves() {
        let nest = LoopNest::matmul_like(3, 4, 2);
        // Partition the middle level: 3 outer waves of 4 groups.
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let plan = plans.iter().find(|p| p.level == 1).unwrap();
        let part = PartitionPlan::new(plan, 4, 4);
        let max_seen_wave = Arc::new(AtomicU64::new(0));
        let m2 = max_seen_wave.clone();
        let body: Arc<PointBody> = Arc::new(move |idx| {
            let w = idx[0] as u64;
            let prev = m2.fetch_max(w, Ordering::SeqCst);
            if prev > w {
                return Err(format!("wave {w} ran after wave {prev}"));
            }
            Ok(())
        });
        let p = pool(Topology::flat(2));
        let rep = run_partitioned(&p, &nest.trip_counts, 1, 0, &part, body).unwrap();
        p.wait_quiescent();
        assert_eq!(rep.waves, 3);
        assert_eq!(rep.points, 24);
        assert_eq!(rep.spawned, 12);
    }

    /// Single-worker pools must not deadlock: the caller helps.
    #[test]
    fn single_worker_pool_completes() {
        let nest = LoopNest::stencil_like(8, 8);
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let plan = plans.iter().find(|p| p.level == 0).unwrap();
        let part = PartitionPlan::new(plan, 8, 4);
        let count = Arc::new(AtomicU64::new(0));
        let c2 = count.clone();
        let body: Arc<PointBody> = Arc::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let p = pool(Topology::flat(1));
        let rep = run_partitioned(&p, &nest.trip_counts, 0, 0, &part, body).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 64);
        assert_eq!(rep.points, 64);
    }

    /// Body errors surface and abort after the wave in flight.
    #[test]
    fn body_errors_propagate() {
        let nest = LoopNest::elementwise(4, 4);
        let plan = plan_native_nest(&nest, &SspConfig::default(), &[0], 2).unwrap();
        let body: Arc<PointBody> = Arc::new(|idx| {
            if idx[0] == 2 && idx[1] == 1 {
                Err("injected failure".to_string())
            } else {
                Ok(())
            }
        });
        let p = pool(Topology::flat(2));
        let err = run_partitioned(&p, &nest.trip_counts, 0, 0, &plan.partition, body).unwrap_err();
        p.wait_quiescent();
        assert!(err.contains("injected failure"));
    }

    /// A body that panics mid-wave (instead of returning `Err`) must
    /// surface as the wave's error, not livelock the help loop — on a
    /// single-worker pool the helping caller runs the group itself, so
    /// this also proves the caller path contains the unwind.
    #[test]
    fn panicking_body_errors_on_single_worker() {
        let nest = LoopNest::stencil_like(8, 4);
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let plan = plans.iter().find(|p| p.level == 0).unwrap();
        let part = PartitionPlan::new(plan, 8, 4);
        assert!(part.wavefront, "time level carries the recurrence");
        let body: Arc<PointBody> = Arc::new(|idx| {
            if idx[0] == 3 {
                panic!("injected panic at t={}", idx[0]);
            }
            Ok(())
        });
        let p = pool(Topology::flat(1));
        let err = run_partitioned(&p, &nest.trip_counts, 0, 0, &part, body).unwrap_err();
        p.wait_quiescent();
        assert!(err.contains("panicked"), "err: {err}");
        assert!(err.contains("injected panic"), "err: {err}");
    }

    /// Same on a grouped multi-worker topology and a parallel (no
    /// wavefront) plan: panicking groups may run on pool workers, whose
    /// `catch_unwind` used to swallow the death without the wave ever
    /// learning — `run_partitioned` then spun forever.
    #[test]
    fn panicking_body_errors_on_grouped_topology() {
        let nest = LoopNest::elementwise(8, 6);
        let plan = plan_native_nest(&nest, &SspConfig::default(), &[0, 1], 4).unwrap();
        assert!(!plan.partition.wavefront);
        let body: Arc<PointBody> = Arc::new(|idx| {
            if idx[0] == 5 {
                panic!("boom");
            }
            Ok(())
        });
        let p = pool(Topology::domains(2, 2));
        let level = plan.level_plan.level;
        let err =
            run_partitioned(&p, &nest.trip_counts, level, 0, &plan.partition, body).unwrap_err();
        p.wait_quiescent();
        assert!(err.contains("panicked"), "err: {err}");
        // The pool survives and takes new work afterwards.
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        p.spawn(move |_| {
            d.fetch_add(1, Ordering::SeqCst);
        });
        p.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    /// A panic in an early wave aborts before later waves start (same
    /// abort-after-the-wave-in-flight contract as a returned `Err`).
    #[test]
    fn panic_aborts_after_wave_in_flight() {
        let nest = LoopNest::matmul_like(3, 4, 2);
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let plan = plans.iter().find(|p| p.level == 1).unwrap();
        let part = PartitionPlan::new(plan, 4, 4);
        let max_wave = Arc::new(AtomicU64::new(0));
        let m2 = max_wave.clone();
        let body: Arc<PointBody> = Arc::new(move |idx| {
            m2.fetch_max(idx[0] as u64, Ordering::SeqCst);
            if idx[0] == 0 {
                panic!("first wave dies");
            }
            Ok(())
        });
        let p = pool(Topology::flat(2));
        let err = run_partitioned(&p, &nest.trip_counts, 1, 0, &part, body).unwrap_err();
        p.wait_quiescent();
        assert!(err.contains("panicked"), "err: {err}");
        assert_eq!(
            max_wave.load(Ordering::SeqCst),
            0,
            "no wave after the dead one may start"
        );
    }

    /// `level_lo` translates the partitioned level's indices.
    #[test]
    fn level_lo_offsets_partitioned_level() {
        let trips = [4u64];
        let nest = LoopNest::elementwise(4, 1);
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let part = PartitionPlan::new(&plans[0], 4, 2);
        let sum = Arc::new(AtomicU64::new(0));
        let s2 = sum.clone();
        let body: Arc<PointBody> = Arc::new(move |idx| {
            s2.fetch_add(idx[0] as u64, Ordering::SeqCst);
            Ok(())
        });
        let p = pool(Topology::flat(2));
        run_partitioned(&p, &trips, 0, 10, &part, body).unwrap();
        p.wait_quiescent();
        assert_eq!(sum.load(Ordering::SeqCst), 10 + 11 + 12 + 13);
    }

    /// A run-granular body sees every point exactly once, as contiguous
    /// innermost spans, when an *outer* level is partitioned.
    #[test]
    fn run_body_covers_every_point_once_outer_level() {
        let nest = LoopNest::matmul_like(4, 3, 5);
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let plan = plans.iter().find(|p| p.level == 1).unwrap();
        let part = PartitionPlan::new(plan, 3, 2);
        let seen: Arc<Vec<AtomicU64>> = Arc::new((0..60).map(|_| AtomicU64::new(0)).collect());
        let s2 = seen.clone();
        let body: Arc<RunBody> = Arc::new(move |prefix, t0, t1| {
            assert_eq!(prefix.len(), 2, "all levels but the innermost");
            for t in t0..t1 {
                s2[((prefix[0] * 3 + prefix[1]) * 5 + t) as usize].fetch_add(1, Ordering::SeqCst);
            }
            Ok(())
        });
        let p = pool(Topology::flat(2));
        let rep =
            run_partitioned_body(&p, &nest.trip_counts, 1, 0, &part, NestBody::Run(body)).unwrap();
        p.wait_quiescent();
        assert_eq!(rep.points, 60);
        assert_eq!(rep.runs, 12, "one full innermost span per (i, j)");
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "point {i}");
        }
    }

    /// When the partitioned level *is* the innermost one, each group's
    /// range arrives as a single span (offset by `level_lo`).
    #[test]
    fn run_body_spans_partitioned_innermost_level() {
        let trips = [8u64];
        let nest = LoopNest::elementwise(8, 1);
        let plans = schedule_all_levels(&nest, &SspConfig::default());
        let part = PartitionPlan::new(&plans[0], 8, 4);
        let sum = Arc::new(AtomicU64::new(0));
        let runs = Arc::new(AtomicU64::new(0));
        let (s2, r2) = (sum.clone(), runs.clone());
        let body: Arc<RunBody> = Arc::new(move |prefix, t0, t1| {
            assert!(prefix.is_empty());
            r2.fetch_add(1, Ordering::SeqCst);
            for t in t0..t1 {
                s2.fetch_add(t as u64, Ordering::SeqCst);
            }
            Ok(())
        });
        let p = pool(Topology::flat(2));
        let rep = run_partitioned_body(&p, &trips, 0, 100, &part, NestBody::Run(body)).unwrap();
        p.wait_quiescent();
        assert_eq!(rep.points, 8);
        assert_eq!(rep.runs, runs.load(Ordering::SeqCst));
        assert_eq!(sum.load(Ordering::SeqCst), (100..108).sum::<u64>());
    }

    /// Run-body errors propagate like point-body errors.
    #[test]
    fn run_body_errors_propagate() {
        let nest = LoopNest::elementwise(6, 4);
        let plan = plan_native_nest(&nest, &SspConfig::default(), &[0], 3).unwrap();
        let body: Arc<RunBody> = Arc::new(|prefix, _, _| {
            if prefix[0] == 4 {
                Err("run failed".to_string())
            } else {
                Ok(())
            }
        });
        let p = pool(Topology::flat(2));
        let err = run_partitioned_body(
            &p,
            &nest.trip_counts,
            0,
            0,
            &plan.partition,
            NestBody::Run(body),
        )
        .unwrap_err();
        p.wait_quiescent();
        assert!(err.contains("run failed"));
    }

    /// Planning restricted to `allowed_levels` never picks a forbidden
    /// level, and prefers a wavefront-free one.
    #[test]
    fn plan_native_respects_allowed_levels() {
        let nest = LoopNest::stencil_like(8, 64);
        // Both levels schedulable; level 1 is wavefront-free.
        let plan = plan_native_nest(&nest, &SspConfig::default(), &[0, 1], 4).unwrap();
        assert_eq!(plan.level_plan.level, 1, "space level is parallel");
        assert!(!plan.partition.wavefront);
        let only_time = plan_native_nest(&nest, &SspConfig::default(), &[0], 4).unwrap();
        assert_eq!(only_time.level_plan.level, 0);
        assert!(only_time.partition.wavefront);
        assert!(plan_native_nest(&nest, &SspConfig::default(), &[], 4).is_none());
    }
}
