//! Iterative modulo scheduling (Rau, MICRO-27) — the classic software
//! pipelining algorithm the paper calls "a most widely and successfully
//! used loop parallelization technique" (§3.3).
//!
//! Given a reduced DDG and a resource mix, find the smallest initiation
//! interval II ≥ MII for which a legal schedule exists: assign each op a
//! start cycle σ(op) such that
//!
//! * dependences hold: `σ(to) ≥ σ(from) + delay − II·distance`;
//! * resources hold: at most `units(kind)` ops of each kind share a slot
//!   modulo II (the **modulo reservation table**).
//!
//! Ops are placed in height-based priority order with bounded eviction
//! (operations that conflict get unscheduled and retried), and the II is
//! bumped when the budget runs out.

use std::collections::BTreeMap;

use crate::ddg::Ddg;
use crate::ir::{LoopNest, OpKind};

/// Functional-unit counts per class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resources {
    /// Integer/branch units.
    pub alu: u32,
    /// Floating-point units.
    pub fpu: u32,
    /// Memory ports.
    pub mem: u32,
}

impl Default for Resources {
    fn default() -> Self {
        // A modest in-order core: Cyclops-64-style thread units are simple.
        Self {
            alu: 2,
            fpu: 1,
            mem: 2,
        }
    }
}

impl Resources {
    /// Unit count for a class.
    pub fn units(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::Alu => self.alu,
            OpKind::Fpu => self.fpu,
            OpKind::Mem => self.mem,
        }
    }

    /// A wide machine (for experiments isolating recurrences).
    pub fn wide() -> Self {
        Self {
            alu: 8,
            fpu: 8,
            mem: 8,
        }
    }
}

/// A successful modulo schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloSchedule {
    /// Achieved initiation interval.
    pub ii: u64,
    /// Start cycle per op.
    pub start: Vec<u64>,
    /// Number of pipeline stages `⌈(max finish)/II⌉`.
    pub stages: u64,
}

/// Scheduling failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No II up to the given bound produced a legal schedule.
    NoScheduleUpTo(u64),
    /// The graph has a zero-distance cycle (not pipelinable at all).
    ZeroDistanceCycle,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::NoScheduleUpTo(ii) => {
                write!(f, "no modulo schedule found with II ≤ {ii}")
            }
            ScheduleError::ZeroDistanceCycle => write!(f, "zero-distance dependence cycle"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl ModuloSchedule {
    /// Verify the schedule against graph and resources; returns a
    /// description of the first violation. Used by tests and by the
    /// continuous-compilation driver when it patches schedules at runtime.
    pub fn verify(&self, nest: &LoopNest, ddg: &Ddg, res: &Resources) -> Result<(), String> {
        for e in &ddg.edges {
            let lhs = self.start[e.to] as i128;
            let rhs = self.start[e.from] as i128 + e.delay as i128
                - (self.ii as i128) * (e.distance as i128);
            if lhs < rhs {
                return Err(format!(
                    "dependence {}→{} violated: start[{}]={} < {}",
                    e.from, e.to, e.to, self.start[e.to], rhs
                ));
            }
        }
        let mut mrt: BTreeMap<(OpKind, u64), u32> = BTreeMap::new();
        for (i, op) in nest.ops.iter().enumerate() {
            let slot = self.start[i] % self.ii;
            let c = mrt.entry((op.kind, slot)).or_insert(0);
            *c += 1;
            if *c > res.units(op.kind) {
                return Err(format!(
                    "resource {:?} oversubscribed at slot {} (II={})",
                    op.kind, slot, self.ii
                ));
            }
        }
        Ok(())
    }
}

/// Schedule `ddg` at the smallest feasible II (bounded search).
pub fn modulo_schedule(
    nest: &LoopNest,
    ddg: &Ddg,
    res: &Resources,
) -> Result<ModuloSchedule, ScheduleError> {
    let bounds = ddg.mii(nest, res);
    if bounds.rec_mii == u64::MAX {
        return Err(ScheduleError::ZeroDistanceCycle);
    }
    let mii = bounds.mii();
    let max_ii = mii + nest.body_latency() + 64;
    for ii in mii..=max_ii {
        if let Some(s) = try_schedule(nest, ddg, res, ii) {
            let span = s
                .iter()
                .enumerate()
                .map(|(i, &t)| t + nest.ops[i].latency as u64)
                .max()
                .unwrap_or(0);
            let sched = ModuloSchedule {
                ii,
                start: s,
                stages: span.div_ceil(ii).max(1),
            };
            debug_assert!(sched.verify(nest, ddg, res).is_ok());
            return Ok(sched);
        }
    }
    Err(ScheduleError::NoScheduleUpTo(max_ii))
}

/// Height-based priority: the longest delay chain from each op to any leaf
/// (through distance-0 edges) — schedule deep chains first.
fn heights(nest: &LoopNest, ddg: &Ddg) -> Vec<u64> {
    let n = nest.ops.len();
    let mut h: Vec<u64> = nest.ops.iter().map(|o| o.latency as u64).collect();
    for _ in 0..n {
        for e in ddg.edges.iter().filter(|e| e.distance == 0) {
            let cand = h[e.to] + nest.ops[e.from].latency as u64;
            if cand > h[e.from] {
                h[e.from] = cand;
            }
        }
    }
    h
}

fn try_schedule(nest: &LoopNest, ddg: &Ddg, res: &Resources, ii: u64) -> Option<Vec<u64>> {
    let n = nest.ops.len();
    let h = heights(nest, ddg);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(h[i]));

    let mut start: Vec<Option<u64>> = vec![None; n];
    let mut mrt: BTreeMap<(OpKind, u64), u32> = BTreeMap::new();
    // Budget of placements before giving up on this II (Rau's budget ratio).
    let mut budget = n * 16;
    let mut queue: Vec<usize> = order.clone();

    while let Some(op) = queue.pop() {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        // Earliest start from scheduled predecessors.
        let mut est = 0i128;
        for e in ddg.edges.iter().filter(|e| e.to == op) {
            if let Some(sf) = start[e.from] {
                let lb = sf as i128 + e.delay as i128 - (ii as i128) * (e.distance as i128);
                est = est.max(lb);
            }
        }
        let est = est.max(0) as u64;
        // Try II consecutive slots from est; each hits a distinct modulo
        // slot, so if none fits the op must evict.
        let kind = nest.ops[op].kind;
        let mut placed = false;
        for t in est..est + ii {
            let slot = t % ii;
            let used = mrt.get(&(kind, slot)).copied().unwrap_or(0);
            if used < res.units(kind) && deps_ok(nest, ddg, &start, op, t, ii) {
                *mrt.entry((kind, slot)).or_insert(0) += 1;
                start[op] = Some(t);
                placed = true;
                break;
            }
        }
        if !placed {
            // Evict the conflicting op occupying the earliest usable slot
            // and take its place.
            let t = est;
            let slot = t % ii;
            // Unschedule one same-kind op at this modulo slot (if resource
            // conflict) or a dependence-violating successor.
            let victim = (0..n).find(|&v| {
                v != op
                    && start[v].is_some()
                    && nest.ops[v].kind == kind
                    && start[v].unwrap() % ii == slot
            });
            match victim {
                Some(v) => {
                    let c = mrt.get_mut(&(kind, slot)).expect("victim occupies slot");
                    *c -= 1;
                    start[v] = None;
                    *mrt.entry((kind, slot)).or_insert(0) += 1;
                    start[op] = Some(t);
                    if !deps_ok(nest, ddg, &start, op, t, ii) {
                        // Dependence still broken: undo and fail this II.
                        return None;
                    }
                    queue.push(v);
                }
                None => return None,
            }
        }
        // Unschedule any already-placed successor whose constraint broke.
        let t = start[op].expect("just placed");
        let mut to_evict = Vec::new();
        for e in ddg.edges.iter().filter(|e| e.from == op) {
            if let Some(st) = start[e.to] {
                let lb = t as i128 + e.delay as i128 - (ii as i128) * (e.distance as i128);
                if (st as i128) < lb {
                    to_evict.push(e.to);
                }
            }
        }
        for v in to_evict {
            if start[v].is_some() {
                let slot = start[v].unwrap() % ii;
                let kind_v = nest.ops[v].kind;
                if let Some(c) = mrt.get_mut(&(kind_v, slot)) {
                    *c -= 1;
                }
                start[v] = None;
                queue.push(v);
            }
        }
    }
    let out: Vec<u64> = start
        .into_iter()
        .map(|s| s.expect("all scheduled"))
        .collect();
    Some(out)
}

/// Check op's placement at `t` against *scheduled* neighbours in both
/// directions.
fn deps_ok(_nest: &LoopNest, ddg: &Ddg, start: &[Option<u64>], op: usize, t: u64, ii: u64) -> bool {
    for e in &ddg.edges {
        if e.to == op {
            if let Some(sf) = start[e.from] {
                if e.from == op {
                    // Self-edge: delay ≤ II·distance must hold.
                    if (e.delay as i128) > (ii as i128) * (e.distance as i128) {
                        return false;
                    }
                    continue;
                }
                let lb = sf as i128 + e.delay as i128 - (ii as i128) * (e.distance as i128);
                if (t as i128) < lb {
                    return false;
                }
            }
        }
        // Successor violations are handled by eviction after placement.
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::Ddg;
    use crate::ir::LoopNest;

    #[test]
    fn matmul_innermost_ii_equals_recurrence() {
        let nest = LoopNest::matmul_like(8, 8, 8);
        let ddg = Ddg::for_level(&nest, 2).unwrap();
        let s = modulo_schedule(&nest, &ddg, &Resources::default()).unwrap();
        assert_eq!(s.ii, 5, "acc recurrence forces II = 5");
        s.verify(&nest, &ddg, &Resources::default()).unwrap();
    }

    #[test]
    fn matmul_middle_level_reaches_res_mii() {
        let nest = LoopNest::matmul_like(8, 8, 8);
        let ddg = Ddg::for_level(&nest, 1).unwrap();
        let res = Resources::default();
        let s = modulo_schedule(&nest, &ddg, &res).unwrap();
        // 3 Mem ops over 2 ports → II = 2.
        assert_eq!(s.ii, 2);
        s.verify(&nest, &ddg, &res).unwrap();
    }

    #[test]
    fn elementwise_achieves_mii() {
        let nest = LoopNest::elementwise(16, 16);
        let ddg = Ddg::for_level(&nest, 1).unwrap();
        let res = Resources::default();
        let s = modulo_schedule(&nest, &ddg, &res).unwrap();
        assert_eq!(s.ii, ddg.mii(&nest, &res).mii());
        s.verify(&nest, &ddg, &res).unwrap();
    }

    #[test]
    fn stencil_time_level_ii_matches_recurrence() {
        let nest = LoopNest::stencil_like(8, 64);
        let ddg = Ddg::for_level(&nest, 0).unwrap();
        let res = Resources::wide();
        let s = modulo_schedule(&nest, &ddg, &res).unwrap();
        assert_eq!(s.ii, ddg.rec_mii(), "wide machine: recurrence is the bound");
        s.verify(&nest, &ddg, &res).unwrap();
    }

    #[test]
    fn schedule_respects_resources_under_pressure() {
        let nest = LoopNest::stencil_like(4, 16);
        let ddg = Ddg::for_level(&nest, 1).unwrap();
        // One memory port: 4 Mem ops → II ≥ 4.
        let res = Resources {
            alu: 1,
            fpu: 1,
            mem: 1,
        };
        let s = modulo_schedule(&nest, &ddg, &res).unwrap();
        assert!(s.ii >= 4);
        s.verify(&nest, &ddg, &res).unwrap();
    }

    #[test]
    fn stages_cover_span() {
        let nest = LoopNest::matmul_like(4, 4, 4);
        let ddg = Ddg::for_level(&nest, 1).unwrap();
        let s = modulo_schedule(&nest, &ddg, &Resources::default()).unwrap();
        let span = s
            .start
            .iter()
            .enumerate()
            .map(|(i, &t)| t + nest.ops[i].latency as u64)
            .max()
            .unwrap();
        assert_eq!(s.stages, span.div_ceil(s.ii).max(1));
    }

    #[test]
    fn verify_rejects_corrupted_schedule() {
        let nest = LoopNest::matmul_like(4, 4, 4);
        let ddg = Ddg::for_level(&nest, 2).unwrap();
        let res = Resources::default();
        let mut s = modulo_schedule(&nest, &ddg, &res).unwrap();
        // Break a dependence: schedule the fma before its loads.
        s.start[2] = 0;
        s.start[0] = 50;
        assert!(s.verify(&nest, &ddg, &res).is_err());
    }
}
