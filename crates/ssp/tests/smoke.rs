//! Public-API smoke test: modulo-schedule a tiny DDG and verify the result
//! through the crate's own checker. Keeps `cargo test -p htvm-ssp`
//! meaningful from outside the crate.

use htvm_ssp::{modulo_schedule, Ddg, LoopNest, Resources};

#[test]
fn modulo_schedule_of_tiny_ddg_verifies() {
    let nest = LoopNest::matmul_like(4, 4, 4);
    let res = Resources::default();
    let level = nest.trip_counts.len() - 1; // innermost level always has a DDG
    let ddg = Ddg::for_level(&nest, level).expect("innermost DDG");
    let sched = modulo_schedule(&nest, &ddg, &res).expect("schedulable");
    sched.verify(&nest, &ddg, &res).expect("schedule is legal");
    let bounds = ddg.mii(&nest, &res);
    assert!(sched.ii >= bounds.mii(), "II respects the MII lower bound");
}
