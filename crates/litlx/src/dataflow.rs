//! Dataflow-style memory operations: full/empty-bit regions.
//!
//! EARTH and the HTMT lineage attach presence bits to memory words so that
//! reads synchronize with the write that produces the datum — "data-flow
//! style operations" (§3.2). [`FeRegion`] pairs a word region with
//! full/empty bits and continuation buffering per word: a deferred read is
//! parked at the word and run by the writer (the same localized-buffering
//! discipline as futures, at memory-word granularity).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use htvm_core::SharedRegion;
use parking_lot::{Condvar, Mutex};

type Waiter = Box<dyn FnOnce(u64) + Send>;

/// A word-addressed region with full/empty presence bits.
pub struct FeRegion {
    data: SharedRegion,
    /// Bitmask of full words, 64 words per mask entry.
    full: Vec<AtomicU64>,
    waiters: Mutex<HashMap<usize, Vec<Waiter>>>,
    cv: Condvar,
}

impl FeRegion {
    /// An all-empty region of `n` words.
    pub fn new(n: usize) -> Self {
        Self {
            data: SharedRegion::new(n),
            full: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            waiters: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the region has no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Presence of word `i`.
    pub fn is_full(&self, i: usize) -> bool {
        self.full[i / 64].load(Ordering::Acquire) & (1 << (i % 64)) != 0
    }

    fn set_full(&self, i: usize) -> bool {
        let prev = self.full[i / 64].fetch_or(1 << (i % 64), Ordering::AcqRel);
        prev & (1 << (i % 64)) == 0
    }

    /// Write word `i` and flip it to full. Panics if already full
    /// (single-assignment per word; use [`FeRegion::reset`] between phases).
    pub fn write_full(&self, i: usize, v: u64) {
        self.data.write(i, v);
        // Flip the presence bit and collect waiters under the same lock that
        // readers use to park, so no deferred read can slip between the two.
        let ws = {
            let mut map = self.waiters.lock();
            assert!(
                self.set_full(i),
                "write_full: word {i} already full (dataflow single-assignment)"
            );
            map.remove(&i)
        };
        self.cv.notify_all();
        // Run deferred readers outside the map lock.
        if let Some(ws) = ws {
            for w in ws {
                w(v);
            }
        }
    }

    /// Non-blocking synchronizing read.
    pub fn try_read(&self, i: usize) -> Option<u64> {
        if self.is_full(i) {
            Some(self.data.read(i))
        } else {
            None
        }
    }

    /// Dataflow read: run `f(value)` now if full, else defer at the word.
    pub fn read_when_full(&self, i: usize, f: impl FnOnce(u64) + Send + 'static) {
        {
            let mut map = self.waiters.lock();
            if !self.is_full(i) {
                map.entry(i).or_default().push(Box::new(f));
                return;
            }
        }
        f(self.data.read(i));
    }

    /// Blocking synchronizing read (LGT-level code only).
    pub fn read_blocking(&self, i: usize) -> u64 {
        let mut map = self.waiters.lock();
        while !self.is_full(i) {
            self.cv.wait(&mut map);
        }
        self.data.read(i)
    }

    /// Deferred readers parked on word `i`.
    pub fn deferred_on(&self, i: usize) -> usize {
        self.waiters.lock().get(&i).map_or(0, |v| v.len())
    }

    /// Empty all presence bits (phase reset). Values remain readable as raw
    /// data but no longer satisfy synchronizing reads.
    pub fn reset(&self) {
        for m in &self.full {
            m.store(0, Ordering::Release);
        }
    }

    /// Raw (non-synchronizing) access to the underlying data.
    pub fn data(&self) -> &SharedRegion {
        &self.data
    }
}

impl std::fmt::Debug for FeRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let full = (0..self.len()).filter(|&i| self.is_full(i)).count();
        f.debug_struct("FeRegion")
            .field("words", &self.len())
            .field("full", &full)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn write_then_read() {
        let r = FeRegion::new(8);
        assert!(!r.is_full(3));
        assert_eq!(r.try_read(3), None);
        r.write_full(3, 99);
        assert!(r.is_full(3));
        assert_eq!(r.try_read(3), Some(99));
        assert_eq!(r.read_blocking(3), 99);
    }

    #[test]
    fn deferred_read_runs_on_write() {
        let r = FeRegion::new(4);
        let seen = Arc::new(Counter::new(0));
        let s = seen.clone();
        r.read_when_full(0, move |v| {
            s.store(v, Ordering::SeqCst);
        });
        assert_eq!(r.deferred_on(0), 1);
        assert_eq!(seen.load(Ordering::SeqCst), 0);
        r.write_full(0, 7);
        assert_eq!(seen.load(Ordering::SeqCst), 7);
        assert_eq!(r.deferred_on(0), 0);
    }

    #[test]
    fn read_after_write_is_immediate() {
        let r = FeRegion::new(2);
        r.write_full(1, 5);
        let seen = Arc::new(Counter::new(0));
        let s = seen.clone();
        r.read_when_full(1, move |v| {
            s.store(v + 1, Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 6);
    }

    #[test]
    #[should_panic(expected = "already full")]
    fn double_write_panics() {
        let r = FeRegion::new(1);
        r.write_full(0, 1);
        r.write_full(0, 2);
    }

    #[test]
    fn reset_clears_presence() {
        let r = FeRegion::new(1);
        r.write_full(0, 9);
        r.reset();
        assert!(!r.is_full(0));
        // After reset the word can be written again.
        r.write_full(0, 10);
        assert_eq!(r.try_read(0), Some(10));
    }

    #[test]
    fn blocking_read_wakes_on_producer() {
        let r = Arc::new(FeRegion::new(1));
        let rr = r.clone();
        let h = std::thread::spawn(move || rr.read_blocking(0));
        std::thread::sleep(std::time::Duration::from_millis(10));
        r.write_full(0, 123);
        assert_eq!(h.join().unwrap(), 123);
    }

    #[test]
    fn presence_bits_span_many_words() {
        let r = FeRegion::new(200);
        for i in (0..200).step_by(7) {
            r.write_full(i, i as u64);
        }
        for i in 0..200 {
            assert_eq!(r.is_full(i), i % 7 == 0, "word {i}");
        }
    }
}
