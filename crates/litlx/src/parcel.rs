//! Parcels: "intelligent messages"-driven split-transaction computation
//! "to reduce communication and to enable the moving of the work to the
//! data (when it makes sense)" (§3.2, citing the Gilgamesh PIM parcels).
//!
//! A parcel carries an *action* to the node that owns the data. Instead of
//! pulling a block across the network, computing, and (often) pushing a
//! result back, the computation itself travels — one small message out, one
//! small message back. The crossover between fetch-and-compute and
//! parcel-ship-compute as the data grows is experiment E2.
//!
//! These builders target the simulated runtime; on the native runtime a
//! "node" has no meaning, so parcels degrade to plain SGT spawns there
//! (locality hints only).

use htvm_sim::{
    Cycle, Effect, Engine, GAddr, NodeId, OnArrive, Placement, SignalId, SimThread, SpawnClass,
    TaskCtx,
};

/// Builder for a parcel: an action shipped to a data-home node.
pub struct ParcelBuilder {
    dst: NodeId,
    header_bytes: u32,
    class: SpawnClass,
}

impl ParcelBuilder {
    /// A parcel destined for `dst`. The default header is 64 bytes (action
    /// id + arguments), the paper's "intelligent message" being small by
    /// construction.
    pub fn to(dst: NodeId) -> Self {
        Self {
            dst,
            header_bytes: 64,
            class: SpawnClass::Sgt,
        }
    }

    /// Override the payload size (e.g. when shipping code + arguments).
    pub fn with_payload(mut self, bytes: u32) -> Self {
        self.header_bytes = bytes;
        self
    }

    /// Override the grain class charged at the destination.
    pub fn with_class(mut self, class: SpawnClass) -> Self {
        self.class = class;
        self
    }

    /// The `Effect` that ships `action` to the destination node.
    pub fn send(self, action: Box<dyn SimThread>) -> Effect {
        Effect::Send {
            dst: self.dst,
            size: self.header_bytes,
            action: OnArrive::Spawn(action, Placement::Node(self.dst), self.class),
        }
    }
}

/// A split-transaction remote reduction: the canonical "move work to data"
/// kernel of E2.
///
/// The parcel walks `elems` elements of 8 bytes starting at `base` (which
/// lives on the *destination* node, so every load is local there), spends
/// `compute_per_elem` cycles per element, and sends an 8-byte result back,
/// signalling `done`.
pub struct RemoteReduce {
    /// Home node of the data.
    pub data_node: NodeId,
    /// First element address.
    pub base: GAddr,
    /// Number of 8-byte elements.
    pub elems: u64,
    /// Compute cycles per element.
    pub compute_per_elem: Cycle,
    /// Node to send the result to.
    pub reply_to: NodeId,
    /// Signal fired (at `reply_to`) when the result arrives.
    pub done: SignalId,
}

/// Bytes a parcel action reads per local memory request: the reduce walks
/// its (local) block sequentially, so it streams DRAM-burst-sized chunks
/// rather than paying full latency per 8-byte element.
const PARCEL_SCAN_CHUNK: u64 = 512;

impl RemoteReduce {
    /// The parcel action that runs at the data's home node: stream the block
    /// chunk-by-chunk from local memory, folding each chunk's elements.
    fn action(&self) -> Box<dyn SimThread> {
        let base = self.base;
        let elems = self.elems;
        let compute = self.compute_per_elem;
        let reply_to = self.reply_to;
        let done = self.done;
        let mut i = 0u64;
        let mut phase = 0u8;
        Box::new(move |_: &mut TaskCtx| {
            if i < elems {
                let chunk_elems = (elems - i).min(PARCEL_SCAN_CHUNK / 8);
                match phase {
                    0 => {
                        phase = 1;
                        return Effect::Load {
                            addr: base.add(i * 8),
                            size: (chunk_elems * 8) as u32,
                        };
                    }
                    _ => {
                        phase = 0;
                        i += chunk_elems;
                        return Effect::Compute(compute.max(1) * chunk_elems);
                    }
                }
            }
            if phase != 2 {
                phase = 2;
                return Effect::Send {
                    dst: reply_to,
                    size: 8,
                    action: OnArrive::Signal(done, 1),
                };
            }
            Effect::Done
        })
    }

    /// The effect the *requesting* thread issues to launch the parcel.
    pub fn launch(&self) -> Effect {
        ParcelBuilder::to(self.data_node).send(self.action())
    }

    /// Baseline A for E2: reduce by issuing one remote load per element
    /// from the requesting node (fine-grain remote access).
    pub fn remote_loads_task(&self) -> Box<dyn SimThread> {
        let base = self.base;
        let elems = self.elems;
        let compute = self.compute_per_elem;
        let mut i = 0u64;
        let mut phase = 0u8;
        Box::new(move |_: &mut TaskCtx| {
            if i < elems {
                match phase {
                    0 => {
                        phase = 1;
                        return Effect::Load {
                            addr: base.add(i * 8),
                            size: 8,
                        };
                    }
                    _ => {
                        phase = 0;
                        i += 1;
                        return Effect::Compute(compute.max(1));
                    }
                }
            }
            Effect::Done
        })
    }

    /// Baseline B for E2: bulk-fetch the whole block with one large remote
    /// load, then compute locally.
    pub fn bulk_fetch_task(&self) -> Box<dyn SimThread> {
        let base = self.base;
        let bytes = (self.elems * 8).min(u32::MAX as u64) as u32;
        let total_compute = self.compute_per_elem.max(1) * self.elems;
        let mut phase = 0u8;
        Box::new(move |_: &mut TaskCtx| match phase {
            0 => {
                phase = 1;
                Effect::Load {
                    addr: base,
                    size: bytes,
                }
            }
            1 => {
                phase = 2;
                Effect::Compute(total_compute)
            }
            _ => Effect::Done,
        })
    }
}

/// Run the three E2 strategies on a fresh two-node engine; returns
/// `(remote_loads, bulk_fetch, parcel)` makespans.
pub fn compare_strategies(
    mk_engine: impl Fn() -> Engine,
    elems: u64,
    compute_per_elem: Cycle,
) -> (Cycle, Cycle, Cycle) {
    let spec = |done| RemoteReduce {
        data_node: 1,
        base: GAddr::dram(1, 0),
        elems,
        compute_per_elem,
        reply_to: 0,
        done,
    };

    // Strategy 1: per-element remote loads.
    let mut e1 = mk_engine();
    let r = spec(SignalId(1));
    e1.spawn(
        Placement::Unit(0, 0),
        SpawnClass::Sgt,
        r.remote_loads_task(),
    );
    let t_loads = e1.run().now;

    // Strategy 2: bulk fetch then local compute.
    let mut e2 = mk_engine();
    let r = spec(SignalId(1));
    e2.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, r.bulk_fetch_task());
    let t_bulk = e2.run().now;

    // Strategy 3: parcel — ship the reduction to the data.
    let mut e3 = mk_engine();
    let r = spec(SignalId(1));
    let mut phase = 0u8;
    e3.spawn_closure(Placement::Unit(0, 0), move |_| match phase {
        0 => {
            phase = 1;
            r.launch()
        }
        1 => {
            phase = 2;
            Effect::Wait(r.done)
        }
        _ => Effect::Done,
    });
    let t_parcel = e3.run().now;

    (t_loads, t_bulk, t_parcel)
}

/// Typed panic payload for a parcel whose computation *failed* rather
/// than crashed: a fallible parcel body (e.g. a LITL-X kernel that
/// trapped with a `KernelFault`) reports its error through this value
/// via `panic_any`, and the serving layer downcasts it back into a
/// typed `Outcome::Failed` — the client sees the kernel's own message,
/// never an opaque panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParcelFault {
    /// The failure description (e.g. a formatted `KernelFault`).
    pub message: String,
}

impl std::fmt::Display for ParcelFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parcel fault: {}", self.message)
    }
}

/// The action a parcel ships: one-shot by default, or a replayable
/// `Fn` when the submitter wants the serving layer to be able to rerun
/// the attempt (retry-after-failure needs a body it can call twice).
enum ParcelAction {
    Once(Box<dyn FnOnce(&htvm_core::WorkerCtx) + Send>),
    Replay(ReplayAction),
}

/// A shared, replayable parcel body — what [`NativeParcel::replayable`]
/// and [`NativeParcel::fallible`] wrap, and what a retrying serving
/// layer clones per attempt.
pub type ReplayAction = std::sync::Arc<dyn Fn(&htvm_core::WorkerCtx) + Send + Sync>;

/// The parcel reinterpreted for the **native serving runtime**: the
/// request envelope `htvm_serve` tenants submit. On real hardware the
/// "destination node" of §3.2 becomes a locality domain, and the
/// shipped action becomes an SGT body run by the pool — but the parcel
/// discipline survives: a request is a *small self-describing message*
/// (nominal payload size + cost) carrying its own computation, so the
/// serving layer can meter admission (deficit-round-robin charges the
/// declared cost) without inspecting the closure.
pub struct NativeParcel {
    payload_bytes: u32,
    cost: u64,
    action: ParcelAction,
}

impl NativeParcel {
    /// A parcel wrapping `action`, with the default 64-byte nominal
    /// header and unit dispatch cost.
    pub fn new(action: impl FnOnce(&htvm_core::WorkerCtx) + Send + 'static) -> Self {
        Self {
            payload_bytes: 64,
            cost: 1,
            action: ParcelAction::Once(Box::new(action)),
        }
    }

    /// A parcel whose action can be run more than once. Only replayable
    /// parcels are eligible for *execution* retries under a serving
    /// retry policy — a one-shot body consumed by a failed attempt
    /// cannot be re-run (shed-before-run retries work for both).
    pub fn replayable(action: impl Fn(&htvm_core::WorkerCtx) + Send + Sync + 'static) -> Self {
        Self {
            payload_bytes: 64,
            cost: 1,
            action: ParcelAction::Replay(std::sync::Arc::new(action)),
        }
    }

    /// A replayable parcel around a **fallible** body. An `Err` is
    /// reported as a typed [`ParcelFault`] carrying the error's
    /// `Display` text (delivered via `panic_any`, so the pool's
    /// containment machinery handles it like any panic, but the
    /// serving layer recovers the typed message). The natural fit for
    /// LITL-X kernels, whose checked paths return `KernelFault`.
    pub fn fallible<E: std::fmt::Display>(
        action: impl Fn(&htvm_core::WorkerCtx) -> Result<(), E> + Send + Sync + 'static,
    ) -> Self {
        Self::replayable(move |ctx| {
            if let Err(e) = action(ctx) {
                std::panic::panic_any(ParcelFault {
                    message: e.to_string(),
                });
            }
        })
    }

    /// Override the nominal payload size (accounting only; nothing is
    /// actually copied).
    pub fn with_payload(mut self, bytes: u32) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Override the dispatch cost charged against the tenant's
    /// deficit-round-robin budget (clamped to ≥ 1 so a zero-cost parcel
    /// cannot starve the round).
    pub fn with_cost(mut self, cost: u64) -> Self {
        self.cost = cost.max(1);
        self
    }

    /// The nominal payload size in bytes.
    pub fn payload_bytes(&self) -> u32 {
        self.payload_bytes
    }

    /// The dispatch cost in deficit units.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// A clone of the replayable body, if this parcel was built with
    /// [`NativeParcel::replayable`] / [`NativeParcel::fallible`].
    pub fn replay_action(&self) -> Option<ReplayAction> {
        match &self.action {
            ParcelAction::Once(_) => None,
            ParcelAction::Replay(f) => Some(f.clone()),
        }
    }

    /// Unwrap into the action the pool will run.
    pub fn into_action(self) -> Box<dyn FnOnce(&htvm_core::WorkerCtx) + Send> {
        match self.action {
            ParcelAction::Once(f) => f,
            ParcelAction::Replay(f) => Box::new(move |ctx| f(ctx)),
        }
    }
}

impl std::fmt::Debug for NativeParcel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeParcel")
            .field("payload_bytes", &self.payload_bytes)
            .field("cost", &self.cost)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_sim::MachineConfig;

    fn two_nodes() -> Engine {
        let mut cfg = MachineConfig::small();
        cfg.nodes = 2;
        Engine::new(cfg)
    }

    #[test]
    fn parcel_round_trip_completes() {
        let mut e = two_nodes();
        let done = SignalId(3);
        let r = RemoteReduce {
            data_node: 1,
            base: GAddr::dram(1, 0),
            elems: 16,
            compute_per_elem: 2,
            reply_to: 0,
            done,
        };
        let mut phase = 0u8;
        e.spawn_closure(Placement::Unit(0, 0), move |_| match phase {
            0 => {
                phase = 1;
                r.launch()
            }
            1 => {
                phase = 2;
                Effect::Wait(done)
            }
            _ => Effect::Done,
        });
        let s = e.run();
        assert_eq!(s.parcels, 1);
        assert_eq!(s.tasks_completed, 2);
        // Request + reply at minimum.
        assert!(s.messages >= 2);
    }

    #[test]
    fn parcel_beats_remote_loads_for_large_blocks() {
        let (loads, _bulk, parcel) = compare_strategies(two_nodes, 512, 2);
        assert!(
            parcel < loads / 4,
            "shipping work must beat 512 remote round trips: parcel={parcel}, loads={loads}"
        );
    }

    #[test]
    fn remote_loads_competitive_for_tiny_blocks() {
        let (loads, _bulk, parcel) = compare_strategies(two_nodes, 2, 2);
        // With 2 elements the strategies are within a small factor; the
        // parcel pays spawn + two messages as well.
        assert!(loads < parcel * 4, "loads={loads}, parcel={parcel}");
    }

    #[test]
    fn bulk_fetch_moves_more_bytes_than_parcel() {
        let bytes = |f: &dyn Fn(&RemoteReduce) -> Box<dyn SimThread>| {
            let mut e = two_nodes();
            let r = RemoteReduce {
                data_node: 1,
                base: GAddr::dram(1, 0),
                elems: 1024,
                compute_per_elem: 1,
                reply_to: 0,
                done: SignalId(1),
            };
            e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, f(&r));
            e.run().message_bytes
        };
        let bulk = bytes(&|r| r.bulk_fetch_task());

        let mut e = two_nodes();
        let r = RemoteReduce {
            data_node: 1,
            base: GAddr::dram(1, 0),
            elems: 1024,
            compute_per_elem: 1,
            reply_to: 0,
            done: SignalId(1),
        };
        let mut phase = 0u8;
        e.spawn_closure(Placement::Unit(0, 0), move |_| match phase {
            0 => {
                phase = 1;
                r.launch()
            }
            1 => {
                phase = 2;
                Effect::Wait(SignalId(1))
            }
            _ => Effect::Done,
        });
        let parcel = e.run().message_bytes;
        assert!(
            parcel * 10 < bulk,
            "parcel moves header+result only: parcel={parcel}B, bulk={bulk}B"
        );
    }

    #[test]
    fn native_parcel_builder_and_dispatch() {
        let parcel = NativeParcel::new(|_ctx| {}).with_payload(256).with_cost(0);
        assert_eq!(parcel.payload_bytes(), 256);
        assert_eq!(parcel.cost(), 1, "zero cost clamps to one deficit unit");
        let ran = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let r = ran.clone();
        let parcel = NativeParcel::new(move |_ctx| {
            r.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        let pool = htvm_core::Pool::new(1);
        pool.spawn(parcel.into_action());
        pool.wait_quiescent();
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn builder_customization() {
        let eff = ParcelBuilder::to(1)
            .with_payload(256)
            .with_class(SpawnClass::Tgt)
            .send(Box::new(|_: &mut TaskCtx| Effect::Done));
        match eff {
            Effect::Send { dst, size, action } => {
                assert_eq!(dst, 1);
                assert_eq!(size, 256);
                match action {
                    OnArrive::Spawn(_, _, class) => assert_eq!(class, SpawnClass::Tgt),
                    other => panic!("unexpected arrival action: {other:?}"),
                }
            }
            other => panic!("unexpected effect: {other:?}"),
        }
    }
}
