//! Futures "for eager producer-consumer computing, with efficient localized
//! buffering of requests at the site of the needed values" (§3.2, citing
//! Halstead's Multilisp).
//!
//! A [`LitlFuture`] couples an SGT producing a value with an
//! [`htvm_core::IVar`]: consumers either block at the LGT level
//! ([`LitlFuture::force`]) or — the latency-tolerant path — attach a
//! continuation that the producer runs on fill ([`LitlFuture::and_then`]),
//! so no worker ever idles on an unresolved value. The queue of deferred
//! continuations lives *at the cell* — the paper's localized buffering.

use std::sync::Arc;

use htvm_core::{IVar, LgtCtx, SgtCtx};

/// A handle to an eagerly-computed value.
pub struct LitlFuture<T> {
    cell: Arc<IVar<T>>,
}

impl<T> Clone for LitlFuture<T> {
    fn clone(&self) -> Self {
        Self {
            cell: self.cell.clone(),
        }
    }
}

impl<T: Send + Sync + 'static> LitlFuture<T> {
    /// An unresolved future backed by a fresh cell (resolve with
    /// [`LitlFuture::resolve`]).
    pub fn unresolved() -> Self {
        Self {
            cell: Arc::new(IVar::new()),
        }
    }

    /// An already-resolved future.
    pub fn ready(value: T) -> Self {
        let f = Self::unresolved();
        f.cell.put(value);
        f
    }

    /// Resolve explicitly (for producers that are not SGT closures).
    pub fn resolve(&self, value: T) {
        self.cell.put(value);
    }

    /// True once the producer has delivered.
    pub fn is_resolved(&self) -> bool {
        self.cell.is_full()
    }

    /// Number of consumers currently buffered at the value site.
    pub fn buffered_consumers(&self) -> usize {
        self.cell.deferred_readers()
    }

    /// Block until resolved and clone the value out. LGT-level only: this
    /// parks the calling OS thread.
    pub fn force(&self) -> T
    where
        T: Clone,
    {
        self.cell.get()
    }

    /// Non-blocking read.
    pub fn poll(&self) -> Option<T>
    where
        T: Clone,
    {
        self.cell.try_get()
    }

    /// Attach a dataflow consumer: runs immediately if resolved, otherwise
    /// buffered at the cell and run by the producer. This is the
    /// SGT-friendly consumption path.
    pub fn and_then(&self, f: impl FnOnce(&T) + Send + 'static) {
        self.cell.on_full(f);
    }
}

impl<T> std::fmt::Debug for LitlFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LitlFuture")
            .field("resolved", &self.cell.is_full())
            .finish()
    }
}

/// Spawn `producer` as an SGT of `lgt` and hand back the future it fills.
pub fn future_on<T, F>(lgt: &LgtCtx<'_>, producer: F) -> LitlFuture<T>
where
    T: Send + Sync + 'static,
    F: FnOnce(&SgtCtx) -> T + Send + 'static,
{
    let fut = LitlFuture::unresolved();
    let cell = fut.cell.clone();
    lgt.spawn_sgt(move |sgt| {
        cell.put(producer(sgt));
    });
    fut
}

/// Spawn `producer` as a child SGT from inside another SGT.
pub fn future_from_sgt<T, F>(sgt: &SgtCtx<'_>, producer: F) -> LitlFuture<T>
where
    T: Send + Sync + 'static,
    F: FnOnce(&SgtCtx) -> T + Send + 'static,
{
    let fut = LitlFuture::unresolved();
    let cell = fut.cell.clone();
    sgt.spawn_sgt(move |s| {
        cell.put(producer(s));
    });
    fut
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_core::{Htvm, HtvmConfig, Topology};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn rt() -> Htvm {
        Htvm::new(HtvmConfig::with_topology(Topology::flat(4)))
    }

    #[test]
    fn force_returns_produced_value() {
        let htvm = rt();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let h = htvm.lgt(move |lgt| {
            let f = future_on(lgt, |_| 6u64 * 7);
            o.store(f.force(), Ordering::SeqCst);
        });
        h.join();
        assert_eq!(out.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn and_then_runs_for_every_consumer() {
        let htvm = rt();
        let sum = Arc::new(AtomicU64::new(0));
        let s = sum.clone();
        let h = htvm.lgt(move |lgt| {
            let f = future_on(lgt, |_| 10u64);
            for _ in 0..5 {
                let s = s.clone();
                f.and_then(move |v| {
                    s.fetch_add(*v, Ordering::SeqCst);
                });
            }
        });
        h.join();
        assert_eq!(sum.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn ready_future_is_immediate() {
        let f = LitlFuture::ready(9i32);
        assert!(f.is_resolved());
        assert_eq!(f.poll(), Some(9));
        assert_eq!(f.force(), 9);
        assert_eq!(f.buffered_consumers(), 0);
    }

    #[test]
    fn unresolved_buffers_consumers_at_value_site() {
        let f: LitlFuture<u32> = LitlFuture::unresolved();
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let hits = hits.clone();
            f.and_then(move |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(f.buffered_consumers(), 3);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        f.resolve(1);
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn futures_chain_without_blocking_workers() {
        let htvm = rt();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let h = htvm.lgt(move |lgt| {
            let a = future_on(lgt, |_| 2u64);
            let b: LitlFuture<u64> = LitlFuture::unresolved();
            let b2 = b.clone();
            a.and_then(move |v| b2.resolve(v * 3));
            let o = o.clone();
            b.and_then(move |v| o.store(*v, Ordering::SeqCst));
        });
        h.join();
        assert_eq!(out.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn future_from_sgt_nests() {
        let htvm = rt();
        let out = Arc::new(AtomicU64::new(0));
        let o = out.clone();
        let h = htvm.lgt(move |lgt| {
            let o = o.clone();
            lgt.spawn_sgt(move |sgt| {
                let f = future_from_sgt(sgt, |_| 5u64);
                let o = o.clone();
                f.and_then(move |v| o.store(*v + 1, Ordering::SeqCst));
            });
        });
        h.join();
        assert_eq!(out.load(Ordering::SeqCst), 6);
    }
}
