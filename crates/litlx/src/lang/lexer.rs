//! Tokenizer for LITL-X source.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (all numbers are f64 in LITL-X).
    Num(f64),
    /// String literal (used in pragmas).
    Str(String),
    /// Punctuation / operator, e.g. `+`, `==`, `..`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Num(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Punct(p) => write!(f, "{p}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its line number (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Source line.
    pub line: u32,
}

const PUNCTS2: [&str; 9] = ["==", "!=", "<=", ">=", "&&", "||", "..", "+=", "-="];
const PUNCTS1: [&str; 18] = [
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "(", ")", "{", "}", "[", "]", ",", ";", "@",
];

/// Tokenize `src`. Returns a lex error message on malformed input.
pub fn lex(src: &str) -> Result<Vec<Spanned>, String> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // The language is ASCII-only (like the paper's pseudo-code); a
        // multi-byte character must become a lex *error*, never a
        // byte-offset slice panic in the punct lookahead below.
        if !bytes[i].is_ascii() {
            let ch = src[i..].chars().next().unwrap_or('?');
            return Err(format!("line {line}: unexpected character `{ch}`"));
        }
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: // to end of line.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit()
                    || bytes[i] == b'.'
                    || bytes[i] == b'e'
                    || bytes[i] == b'E'
                    || ((bytes[i] == b'+' || bytes[i] == b'-')
                        && i > start
                        && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
            {
                // `0..n` must lex as Num(0), "..", Ident(n): stop the number
                // when we see "..".
                if bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    break;
                }
                i += 1;
            }
            let text = &src[start..i];
            let n: f64 = text
                .parse()
                .map_err(|_| format!("line {line}: bad number literal `{text}`"))?;
            out.push(Spanned {
                tok: Token::Num(n),
                line,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Spanned {
                tok: Token::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        if c == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\n' {
                    return Err(format!("line {line}: unterminated string"));
                }
                j += 1;
            }
            if j >= bytes.len() {
                return Err(format!("line {line}: unterminated string"));
            }
            out.push(Spanned {
                tok: Token::Str(src[start..j].to_string()),
                line,
            });
            i = j + 1;
            continue;
        }
        if i + 1 < bytes.len() && bytes[i + 1].is_ascii() {
            let two = &src[i..i + 2];
            if let Some(p) = PUNCTS2.iter().find(|&&p| p == two) {
                out.push(Spanned {
                    tok: Token::Punct(p),
                    line,
                });
                i += 2;
                continue;
            }
        }
        let one = &src[i..i + 1];
        if let Some(p) = PUNCTS1.iter().find(|&&p| p == one) {
            out.push(Spanned {
                tok: Token::Punct(p),
                line,
            });
            i += 1;
            continue;
        }
        return Err(format!("line {line}: unexpected character `{c}`"));
    }
    out.push(Spanned {
        tok: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn non_ascii_is_an_error_not_a_panic() {
        // Found by the parser fuzz property: multi-byte characters used to
        // panic the byte-offset punct lookahead.
        assert!(lex("λ").is_err());
        assert!(lex("=λ").is_err());
        assert!(lex("let ü = 1;").is_err());
        // Inside string literals non-ASCII is fine.
        let toks = lex("@hint(s = \"gúided\")").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Token::Str(s) if s == "gúided")));
    }

    #[test]
    fn lexes_numbers_idents_puncts() {
        assert_eq!(
            toks("let x = 3.5;"),
            vec![
                Token::Ident("let".into()),
                Token::Ident("x".into()),
                Token::Punct("="),
                Token::Num(3.5),
                Token::Punct(";"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn range_does_not_eat_dots() {
        assert_eq!(
            toks("0..n"),
            vec![
                Token::Num(0.0),
                Token::Punct(".."),
                Token::Ident("n".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("a <= b == c && d"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<="),
                Token::Ident("b".into()),
                Token::Punct("=="),
                Token::Ident("c".into()),
                Token::Punct("&&"),
                Token::Ident("d".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x // comment\ny"),
            vec![
                Token::Ident("x".into()),
                Token::Ident("y".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_and_pragma_marker() {
        assert_eq!(
            toks("@hint(schedule = \"guided\")"),
            vec![
                Token::Punct("@"),
                Token::Ident("hint".into()),
                Token::Punct("("),
                Token::Ident("schedule".into()),
                Token::Punct("="),
                Token::Str("guided".into()),
                Token::Punct(")"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(toks("1e3")[0], Token::Num(1000.0));
        assert_eq!(toks("2.5e-2")[0], Token::Num(0.025));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("let $x = 1;").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
