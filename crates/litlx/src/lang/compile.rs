//! Compiling the lowered kernel tape for run-at-a-time execution.
//!
//! [`super::lower`] produces a per-point register tape: correct, but every
//! iteration point pays a scratch borrow, per-instruction dispatch, an
//! affine-index evaluation and a bounds check per access, and a
//! `Result<(), String>` error path. This module takes that tape plus the
//! nest's rectangular trip counts and produces a [`CompiledKernel`] that
//! executes whole **runs** — `(prefix, t0..t1)` spans of the innermost
//! level — instead of points:
//!
//! 1. **Tape optimization** — constant folding, dead-register
//!    elimination, and a preamble/body split that hoists everything
//!    invariant in the innermost level (constants, outer index values,
//!    loads with innermost stride 0 from arrays the kernel never stores)
//!    to once-per-run execution.
//! 2. **Bounds-check hoisting** — each access's affine index is bounded
//!    over the whole iteration box at compile time (interval arithmetic in
//!    `i128`, so no intermediate overflow). A proven access runs
//!    branch-free and infallibly through the `SharedRegion` unchecked
//!    API; an unproven access keeps a checked fallback whose error — a
//!    tiny `Copy` [`KernelFault`] — is formatted only if it surfaces.
//! 3. **Strength reduction** — affine polynomials become per-slot base
//!    indices (evaluated once per run) plus per-point stride increments.
//! 4. **Monomorphization** — the two shapes the benchmarks actually hit
//!    get native closed-form loops, unrolled by 4 over the region word
//!    slabs: `Plan::DotAccum` (`c[..] += a[..] * b[..]` with an
//!    innermost-invariant store, the matmul reduction) and
//!    `Plan::FmaMap` (`d[..] = a[..] * b[..] (+ k)`, the elementwise
//!    map). Everything else runs on the optimized run-at-a-time tape
//!    interpreter, `Plan::Tape`.
//!
//! # Why the results stay bit-identical to the interpreted path
//!
//! The SSP executor serializes every pair of iterations that can touch
//! one location: same-location accesses inside one partitioned-level
//! iteration run sequentially in one group, and pairs that span
//! partitioned-level iterations force a wavefront (the lowering emits
//! carried dependences at every distinguishing level, in both directions
//! for free levels), which runs groups in ascending order. Execution
//! order is therefore exactly the sequential lexicographic order, so
//!
//! * accumulate stores may use a plain load-add-store
//!   ([`SharedRegion::accum_f64_unchecked`]) instead of a CAS loop, and
//! * `Plan::DotAccum` may keep the accumulator in a register for the
//!   whole run and store once — the products are applied in iteration
//!   order to the loaded value, so the final bits equal the per-point
//!   read-add-write sequence. This requires the store array to be
//!   distinct from both load arrays (checked at compile time; regions
//!   are identity-deduplicated, and distinct regions never overlap).
//!
//! The unrolled loops never reassociate floating-point sums. Memory
//! access stays relaxed-atomic throughout — a racing LITL-X `spawn` may
//! always write a `SharedRegion` concurrently, so handing LLVM a plain
//! `&[f64]` would be undefined behaviour no matter what the kernel
//! proves about itself. Relaxed `AtomicU64` loads/stores compile to bare
//! moves on x86-64; the unroll buys instruction-level parallelism even
//! though the atomic slabs keep the autovectorizer off.

use std::sync::atomic::{AtomicU64, Ordering};

use htvm_core::SharedRegion;

use super::ast::BinOp;
use super::lower::{AffineIdx, KInstr, Kernel, MathFn, MathFn2};

/// A data-dependent bounds fault from an unproven access of the checked
/// fallback path. Deliberately a tiny `Copy` value: the hot loop returns
/// it by value and nothing allocates unless the caller formats it (the
/// text matches the interpreted kernel's error, so both paths report
/// identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelFault {
    /// Array-table index of the faulting access.
    pub arr: usize,
    /// The affine index value that fell outside the array.
    pub index: i64,
    /// Length of the array.
    pub len: usize,
}

impl std::fmt::Display for KernelFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index {} out of bounds for array of length {}",
            self.index, self.len
        )
    }
}

impl std::error::Error for KernelFault {}

/// One array access of the compiled kernel: the original affine form,
/// its innermost stride, and whether the whole-box bounds proof held.
#[derive(Debug, Clone)]
pub struct RunAccess {
    /// Array-table index.
    pub arr: usize,
    /// The affine index over absolute induction values.
    pub idx: AffineIdx,
    /// Innermost-level coefficient: the per-point index increment.
    pub stride: i64,
    /// Whether `min/max` of `idx` over the iteration box is provably in
    /// bounds — the license for the branch-free unchecked path.
    pub proven: bool,
}

/// One instruction of the optimized tape. Mirrors [`KInstr`] except that
/// loads and stores reference an access **slot** whose index is
/// maintained incrementally per point instead of re-evaluating the
/// affine polynomial.
#[derive(Debug, Clone, PartialEq)]
enum CInstr {
    Const {
        dst: usize,
        val: f64,
    },
    IdxVal {
        dst: usize,
        level: usize,
    },
    Load {
        dst: usize,
        slot: usize,
    },
    Bin {
        dst: usize,
        op: BinOp,
        a: usize,
        b: usize,
    },
    Neg {
        dst: usize,
        a: usize,
    },
    Call1 {
        dst: usize,
        f: MathFn,
        a: usize,
    },
    Call2 {
        dst: usize,
        f: MathFn2,
        a: usize,
        b: usize,
    },
    Store {
        src: usize,
        slot: usize,
        accumulate: bool,
    },
}

impl CInstr {
    fn dst(&self) -> Option<usize> {
        match self {
            CInstr::Const { dst, .. }
            | CInstr::IdxVal { dst, .. }
            | CInstr::Load { dst, .. }
            | CInstr::Bin { dst, .. }
            | CInstr::Neg { dst, .. }
            | CInstr::Call1 { dst, .. }
            | CInstr::Call2 { dst, .. } => Some(*dst),
            CInstr::Store { .. } => None,
        }
    }

    fn operands(&self) -> (Option<usize>, Option<usize>) {
        match self {
            CInstr::Const { .. } | CInstr::IdxVal { .. } | CInstr::Load { .. } => (None, None),
            CInstr::Neg { a, .. } | CInstr::Call1 { a, .. } => (Some(*a), None),
            CInstr::Bin { a, b, .. } | CInstr::Call2 { a, b, .. } => (Some(*a), Some(*b)),
            CInstr::Store { src, .. } => (Some(*src), None),
        }
    }
}

/// The `c[..] += a[..] * b[..]` reduction with an innermost-invariant
/// store: per-run register accumulation, one store.
#[derive(Debug, Clone, Copy)]
struct DotAccum {
    /// Access slots: the two loads and the accumulate store.
    a: usize,
    b: usize,
    c: usize,
}

/// The `d[..] = a[..] * b[..] (+ k)` elementwise map; `k` is a
/// preamble register (run-invariant), if present.
#[derive(Debug, Clone, Copy)]
struct FmaMap {
    a: usize,
    b: usize,
    dst: usize,
    addend: Option<usize>,
}

/// How a compiled kernel executes a run.
#[derive(Debug, Clone)]
enum Plan {
    /// Monomorphized accumulate reduction (see [`DotAccum`]).
    DotAccum(DotAccum),
    /// Monomorphized elementwise FMA map (see [`FmaMap`]).
    FmaMap(FmaMap),
    /// The optimized run-at-a-time tape interpreter.
    Tape,
}

/// Introspection of a compilation, for tests, benches and reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileInfo {
    /// Which executor the kernel got: `"dot-accum"`, `"fma-map"` or
    /// `"tape"`.
    pub plan: &'static str,
    /// Total access slots.
    pub accesses: usize,
    /// Slots whose bounds proof held.
    pub proven: usize,
    /// Instructions hoisted to the once-per-run preamble.
    pub hoisted: usize,
    /// Per-point body instructions after optimization.
    pub body: usize,
    /// Whether every access is proven (the kernel is infallible).
    pub all_proven: bool,
}

/// A kernel compiled against one nest geometry, executing runs of the
/// innermost level.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    arrays: Vec<SharedRegion>,
    los: Vec<i64>,
    trips: Vec<u64>,
    accesses: Vec<RunAccess>,
    preamble: Vec<CInstr>,
    body: Vec<CInstr>,
    regs: usize,
    plan: Plan,
}

/// Bound `idx` over the rectangular box `[los[l], los[l]+trips[l])` per
/// level and check the extremes against `len`. Interval arithmetic in
/// `i128`: the i64 coefficients and bounds cannot overflow the product
/// space.
fn prove_in_bounds(idx: &AffineIdx, los: &[i64], trips: &[u64], len: usize) -> bool {
    let mut lo = idx.offset as i128;
    let mut hi = idx.offset as i128;
    for ((&c, &l0), &n) in idx.coefs.iter().zip(los).zip(trips) {
        if n == 0 {
            // Empty box: nothing will execute; treat as unproven so the
            // unchecked path is never licensed by a vacuous proof.
            return false;
        }
        let at_lo = (c as i128) * (l0 as i128);
        let at_hi = (c as i128) * (l0 as i128 + n as i128 - 1);
        lo += at_lo.min(at_hi);
        hi += at_lo.max(at_hi);
    }
    lo >= 0 && hi < len as i128
}

fn eval_bin(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        BinOp::Eq => (x == y) as i64 as f64,
        BinOp::Ne => (x != y) as i64 as f64,
        BinOp::Lt => (x < y) as i64 as f64,
        BinOp::Le => (x <= y) as i64 as f64,
        BinOp::Gt => (x > y) as i64 as f64,
        BinOp::Ge => (x >= y) as i64 as f64,
        BinOp::And | BinOp::Or => unreachable!("bailed at lowering"),
    }
}

fn eval_call1(f: MathFn, x: f64) -> f64 {
    match f {
        MathFn::Sqrt => x.sqrt(),
        MathFn::Abs => x.abs(),
        MathFn::Exp => x.exp(),
        MathFn::Log => x.ln(),
        MathFn::Sin => x.sin(),
        MathFn::Cos => x.cos(),
        MathFn::Floor => x.floor(),
    }
}

fn eval_call2(f: MathFn2, x: f64, y: f64) -> f64 {
    match f {
        MathFn2::Pow => x.powf(y),
        MathFn2::Min => x.min(y),
        MathFn2::Max => x.max(y),
    }
}

/// Compile `kernel` against the nest's rectangular `trips` (one count
/// per level, outermost first — the same geometry the SSP executor
/// partitions). The result is tied to this geometry: the bounds proofs
/// quantify over exactly this box, and [`CompiledKernel::execute_run`]
/// asserts membership.
pub fn compile(kernel: &Kernel, trips: &[u64]) -> CompiledKernel {
    assert_eq!(
        kernel.los.len(),
        trips.len(),
        "trip counts must cover every nest level"
    );
    let depth = trips.len();
    let innermost = depth - 1;

    // Pass 1: KInstr -> CInstr, collecting access slots (base + stride +
    // bounds proof) and folding constants as we go.
    let mut accesses: Vec<RunAccess> = Vec::new();
    let slot = |accesses: &mut Vec<RunAccess>, arr: usize, idx: &AffineIdx| -> usize {
        accesses.push(RunAccess {
            arr,
            idx: idx.clone(),
            stride: *idx.coefs.last().expect("depth >= 1"),
            proven: prove_in_bounds(idx, &kernel.los, trips, kernel.arrays[arr].len()),
        });
        accesses.len() - 1
    };
    let mut known: Vec<Option<f64>> = vec![None; kernel.regs];
    let mut instrs: Vec<CInstr> = Vec::with_capacity(kernel.instrs.len());
    for ins in &kernel.instrs {
        match ins {
            KInstr::Const { dst, val } => {
                known[*dst] = Some(*val);
                instrs.push(CInstr::Const {
                    dst: *dst,
                    val: *val,
                });
            }
            KInstr::IdxVal { dst, level } => instrs.push(CInstr::IdxVal {
                dst: *dst,
                level: *level,
            }),
            KInstr::Load { dst, arr, idx } => {
                let s = slot(&mut accesses, *arr, idx);
                instrs.push(CInstr::Load { dst: *dst, slot: s });
            }
            KInstr::Bin { dst, op, a, b } => match (known[*a], known[*b]) {
                (Some(x), Some(y)) => {
                    let v = eval_bin(*op, x, y);
                    known[*dst] = Some(v);
                    instrs.push(CInstr::Const { dst: *dst, val: v });
                }
                _ => instrs.push(CInstr::Bin {
                    dst: *dst,
                    op: *op,
                    a: *a,
                    b: *b,
                }),
            },
            KInstr::Neg { dst, a } => match known[*a] {
                Some(x) => {
                    known[*dst] = Some(-x);
                    instrs.push(CInstr::Const { dst: *dst, val: -x });
                }
                None => instrs.push(CInstr::Neg { dst: *dst, a: *a }),
            },
            KInstr::Call1 { dst, f, a } => match known[*a] {
                Some(x) => {
                    let v = eval_call1(*f, x);
                    known[*dst] = Some(v);
                    instrs.push(CInstr::Const { dst: *dst, val: v });
                }
                None => instrs.push(CInstr::Call1 {
                    dst: *dst,
                    f: *f,
                    a: *a,
                }),
            },
            KInstr::Call2 { dst, f, a, b } => match (known[*a], known[*b]) {
                (Some(x), Some(y)) => {
                    let v = eval_call2(*f, x, y);
                    known[*dst] = Some(v);
                    instrs.push(CInstr::Const { dst: *dst, val: v });
                }
                _ => instrs.push(CInstr::Call2 {
                    dst: *dst,
                    f: *f,
                    a: *a,
                    b: *b,
                }),
            },
            KInstr::Store {
                src,
                arr,
                idx,
                accumulate,
            } => {
                let s = slot(&mut accesses, *arr, idx);
                instrs.push(CInstr::Store {
                    src: *src,
                    slot: s,
                    accumulate: *accumulate,
                });
            }
        }
    }

    // Pass 2: dead-register elimination (backward liveness). Stores are
    // roots. A dead *load* may only be dropped when its bounds are proven
    // — an unproven dead load must stay, or the compiled kernel would
    // stop faulting where the interpreted one faults.
    let mut live = vec![false; kernel.regs];
    let mut keep = vec![false; instrs.len()];
    for (i, ins) in instrs.iter().enumerate().rev() {
        let needed = match ins {
            CInstr::Store { .. } => true,
            CInstr::Load { dst, slot } => live[*dst] || !accesses[*slot].proven,
            other => other.dst().map(|d| live[d]).unwrap_or(false),
        };
        keep[i] = needed;
        if needed {
            let (a, b) = ins.operands();
            if let Some(a) = a {
                live[a] = true;
            }
            if let Some(b) = b {
                live[b] = true;
            }
        }
    }
    let instrs: Vec<CInstr> = instrs
        .into_iter()
        .zip(keep)
        .filter_map(|(ins, k)| k.then_some(ins))
        .collect();

    // Pass 3: preamble/body split. Innermost-invariant instructions run
    // once per run. A load hoists only when its innermost stride is 0,
    // its bounds are proven (a hoisted fault would reorder against body
    // stores), and the kernel never stores its array (a body store could
    // feed it mid-run).
    let mut array_stored = vec![false; kernel.arrays.len()];
    for ins in &instrs {
        if let CInstr::Store { slot, .. } = ins {
            array_stored[accesses[*slot].arr] = true;
        }
    }
    let mut hoisted_reg = vec![false; kernel.regs];
    let mut preamble = Vec::new();
    let mut body = Vec::new();
    for ins in instrs {
        let hoist = match &ins {
            CInstr::Const { .. } => true,
            CInstr::IdxVal { level, .. } => *level < innermost,
            CInstr::Load { slot, .. } => {
                let a = &accesses[*slot];
                a.stride == 0 && a.proven && !array_stored[a.arr]
            }
            CInstr::Neg { a, .. } | CInstr::Call1 { a, .. } => hoisted_reg[*a],
            CInstr::Bin { a, b, .. } | CInstr::Call2 { a, b, .. } => {
                hoisted_reg[*a] && hoisted_reg[*b]
            }
            CInstr::Store { .. } => false,
        };
        if hoist {
            if let Some(d) = ins.dst() {
                hoisted_reg[d] = true;
            }
            preamble.push(ins);
        } else {
            body.push(ins);
        }
    }

    // Pass 4: monomorphization over the residual body.
    let plan = match_dot_accum(&body, &accesses)
        .or_else(|| match_fma_map(&body, &accesses, &hoisted_reg))
        .unwrap_or(Plan::Tape);

    CompiledKernel {
        arrays: kernel.arrays.clone(),
        los: kernel.los.clone(),
        trips: trips.to_vec(),
        accesses,
        preamble,
        body,
        regs: kernel.regs,
        plan,
    }
}

/// Match `c[inv] += a[..] * b[..]`: two loads, a multiply of exactly
/// those, an accumulate store of the product whose index is
/// innermost-invariant. Requires full bounds proofs and a store array
/// distinct from both load arrays (the run-long register accumulator
/// defers the store to the end of the run, which must not be observable
/// through a load).
fn match_dot_accum(body: &[CInstr], accesses: &[RunAccess]) -> Option<Plan> {
    let [CInstr::Load { dst: r1, slot: sa }, CInstr::Load { dst: r2, slot: sb }, CInstr::Bin {
        dst: r3,
        op: BinOp::Mul,
        a,
        b,
    }, CInstr::Store {
        src,
        slot: sc,
        accumulate: true,
    }] = body
    else {
        return None;
    };
    if !((a == r1 && b == r2) || (a == r2 && b == r1)) || src != r3 {
        return None;
    }
    let (aa, ab, ac) = (&accesses[*sa], &accesses[*sb], &accesses[*sc]);
    if ac.stride != 0 || !(aa.proven && ab.proven && ac.proven) {
        return None;
    }
    if ac.arr == aa.arr || ac.arr == ab.arr {
        return None;
    }
    Some(Plan::DotAccum(DotAccum {
        a: *sa,
        b: *sb,
        c: *sc,
    }))
}

/// Match `d[..] = a[..] * b[..]` or `d[..] = a[..] * b[..] + k` with `k`
/// a run-invariant (preamble) register. Requires full bounds proofs and
/// a destination array distinct from both sources: the unrolled loop
/// batches four loads before four stores, which is only
/// order-equivalent when they cannot alias.
fn match_fma_map(body: &[CInstr], accesses: &[RunAccess], hoisted_reg: &[bool]) -> Option<Plan> {
    let (sa, sb, r1, r2, mul, rest) = match body {
        [CInstr::Load { dst: r1, slot: sa }, CInstr::Load { dst: r2, slot: sb }, CInstr::Bin {
            dst,
            op: BinOp::Mul,
            a,
            b,
        }, rest @ ..] => (*sa, *sb, *r1, *r2, (*dst, *a, *b), rest),
        _ => return None,
    };
    let (r3, a, b) = mul;
    if !((a == r1 && b == r2) || (a == r2 && b == r1)) {
        return None;
    }
    let (addend, store) = match rest {
        [CInstr::Store {
            src,
            slot,
            accumulate: false,
        }] if *src == r3 => (None, *slot),
        [CInstr::Bin {
            dst: r4,
            op: BinOp::Add,
            a: x,
            b: y,
        }, CInstr::Store {
            src,
            slot,
            accumulate: false,
        }] if *src == *r4 => {
            let k = if *x == r3 && hoisted_reg.get(*y).copied().unwrap_or(false) {
                *y
            } else if *y == r3 && hoisted_reg.get(*x).copied().unwrap_or(false) {
                *x
            } else {
                return None;
            };
            (Some(k), *slot)
        }
        _ => return None,
    };
    let (aa, ab, ad) = (&accesses[sa], &accesses[sb], &accesses[store]);
    if !(aa.proven && ab.proven && ad.proven) {
        return None;
    }
    if ad.arr == aa.arr || ad.arr == ab.arr {
        return None;
    }
    Some(Plan::FmaMap(FmaMap {
        a: sa,
        b: sb,
        dst: store,
        addend,
    }))
}

/// Relaxed-atomic `f64` load without a bounds check.
///
/// # Safety
///
/// `i` is non-negative and `(i as usize) < w.len()` — established by the
/// caller's compile-time bounds proof plus `execute_run`'s box assertion.
#[inline(always)]
unsafe fn lrel(w: &[AtomicU64], i: i64) -> f64 {
    debug_assert!(0 <= i && (i as usize) < w.len());
    f64::from_bits(w.get_unchecked(i as usize).load(Ordering::Relaxed))
}

/// Relaxed-atomic `f64` store without a bounds check.
///
/// # Safety
///
/// Same contract as [`lrel`].
#[inline(always)]
unsafe fn srel(w: &[AtomicU64], i: i64, v: f64) {
    debug_assert!(0 <= i && (i as usize) < w.len());
    w.get_unchecked(i as usize)
        .store(v.to_bits(), Ordering::Relaxed);
}

/// Per-thread run scratch: registers, absolute induction values, and the
/// incrementally maintained per-slot indices — borrowed **once per run**,
/// not once per point.
struct RunScratch {
    regs: Vec<f64>,
    abs: Vec<i64>,
    idxs: Vec<i64>,
}

thread_local! {
    static RUN_SCRATCH: std::cell::RefCell<RunScratch> = const {
        std::cell::RefCell::new(RunScratch {
            regs: Vec::new(),
            abs: Vec::new(),
            idxs: Vec::new(),
        })
    };
}

impl CompiledKernel {
    /// What the compiler did with this kernel.
    pub fn info(&self) -> CompileInfo {
        CompileInfo {
            plan: match self.plan {
                Plan::DotAccum(_) => "dot-accum",
                Plan::FmaMap(_) => "fma-map",
                Plan::Tape => "tape",
            },
            accesses: self.accesses.len(),
            proven: self.accesses.iter().filter(|a| a.proven).count(),
            hoisted: self.preamble.len(),
            body: self.body.len(),
            all_proven: self.accesses.iter().all(|a| a.proven),
        }
    }

    /// The access slots (for tests asserting which proofs held).
    pub fn accesses(&self) -> &[RunAccess] {
        &self.accesses
    }

    /// Execute one run: the iteration points `(prefix, t)` for `t` in
    /// `t0..t1`, where `prefix` holds the 0-based indices of every level
    /// but the innermost (the kernel translates via the nest's lower
    /// bounds).
    ///
    /// # Panics
    ///
    /// If the run lies outside the compiled iteration box. The bounds
    /// proofs quantify over exactly that box, so membership is asserted
    /// — not assumed — before any unchecked access; the SSP executor
    /// catches the panic as the group's error.
    pub fn execute_run(&self, prefix: &[i64], t0: i64, t1: i64) -> Result<(), KernelFault> {
        let depth = self.trips.len();
        assert_eq!(
            prefix.len(),
            depth - 1,
            "run prefix must cover every level but the innermost"
        );
        for (l, &p) in prefix.iter().enumerate() {
            assert!(
                p >= 0 && (p as u64) < self.trips[l],
                "run prefix {p} outside level {l} (trip count {})",
                self.trips[l]
            );
        }
        let n_last = self.trips[depth - 1];
        assert!(
            0 <= t0 && t0 <= t1 && (t1 as u64) <= n_last,
            "run {t0}..{t1} outside the innermost trip count {n_last}"
        );
        if t0 == t1 {
            return Ok(());
        }
        RUN_SCRATCH.with(|cell| {
            let mut borrow = cell.borrow_mut();
            let RunScratch { regs, abs, idxs } = &mut *borrow;
            abs.clear();
            abs.extend(
                self.los[..depth - 1]
                    .iter()
                    .zip(prefix)
                    .map(|(lo, p)| lo + p),
            );
            abs.push(self.los[depth - 1] + t0);
            regs.clear();
            regs.resize(self.regs, 0.0);
            self.run_preamble(abs, regs);
            let n = (t1 - t0) as usize;
            match &self.plan {
                Plan::DotAccum(m) => {
                    self.run_dot_accum(m, abs, n);
                    Ok(())
                }
                Plan::FmaMap(m) => {
                    self.run_fma_map(m, regs, abs, n);
                    Ok(())
                }
                Plan::Tape => self.run_tape(regs, abs, idxs, n),
            }
        })
    }

    /// The once-per-run preamble. Infallible by construction: only
    /// proven loads hoist.
    fn run_preamble(&self, abs: &[i64], regs: &mut [f64]) {
        for ins in &self.preamble {
            match ins {
                CInstr::Const { dst, val } => regs[*dst] = *val,
                CInstr::IdxVal { dst, level } => regs[*dst] = abs[*level] as f64,
                CInstr::Load { dst, slot } => {
                    let a = &self.accesses[*slot];
                    let i = a.idx.eval(abs);
                    // SAFETY: hoisted loads are proven in bounds over the
                    // whole box, and `execute_run` asserted membership.
                    regs[*dst] = unsafe { self.arrays[a.arr].read_f64_unchecked(i as usize) };
                }
                CInstr::Bin { dst, op, a, b } => regs[*dst] = eval_bin(*op, regs[*a], regs[*b]),
                CInstr::Neg { dst, a } => regs[*dst] = -regs[*a],
                CInstr::Call1 { dst, f, a } => regs[*dst] = eval_call1(*f, regs[*a]),
                CInstr::Call2 { dst, f, a, b } => {
                    regs[*dst] = eval_call2(*f, regs[*a], regs[*b]);
                }
                CInstr::Store { .. } => unreachable!("stores never hoist"),
            }
        }
    }

    fn run_dot_accum(&self, m: &DotAccum, abs: &[i64], n: usize) {
        let (aa, ab, ac) = (
            &self.accesses[m.a],
            &self.accesses[m.b],
            &self.accesses[m.c],
        );
        let aw = self.arrays[aa.arr].atomics();
        let bw = self.arrays[ab.arr].atomics();
        let cr = &self.arrays[ac.arr];
        let (da, db) = (aa.stride, ab.stride);
        let mut ia = aa.idx.eval(abs);
        let mut ib = ab.idx.eval(abs);
        let ic = ac.idx.eval(abs);
        // SAFETY: every index below is the access's affine form evaluated
        // at a point of the run; `execute_run` asserted the run lies in
        // the compiled box and the matcher required full bounds proofs
        // over that box. Keeping the accumulator in a register for the
        // run is exact: products are added in iteration order onto the
        // loaded value (bit-identical to per-point read-add-write — the
        // SSP wavefront guarantees no concurrent writer), and the store
        // array is proven distinct from both load arrays.
        unsafe {
            let mut s = cr.read_f64_unchecked(ic as usize);
            let mut k = 0usize;
            while k + 4 <= n {
                let p0 = lrel(aw, ia) * lrel(bw, ib);
                let p1 = lrel(aw, ia + da) * lrel(bw, ib + db);
                let p2 = lrel(aw, ia + 2 * da) * lrel(bw, ib + 2 * db);
                let p3 = lrel(aw, ia + 3 * da) * lrel(bw, ib + 3 * db);
                s += p0;
                s += p1;
                s += p2;
                s += p3;
                ia += 4 * da;
                ib += 4 * db;
                k += 4;
            }
            while k < n {
                s += lrel(aw, ia) * lrel(bw, ib);
                ia += da;
                ib += db;
                k += 1;
            }
            cr.write_f64_unchecked(ic as usize, s);
        }
    }

    fn run_fma_map(&self, m: &FmaMap, regs: &[f64], abs: &[i64], n: usize) {
        let (aa, ab, ad) = (
            &self.accesses[m.a],
            &self.accesses[m.b],
            &self.accesses[m.dst],
        );
        let aw = self.arrays[aa.arr].atomics();
        let bw = self.arrays[ab.arr].atomics();
        let dw = self.arrays[ad.arr].atomics();
        let (da, db, dd) = (aa.stride, ab.stride, ad.stride);
        let mut ia = aa.idx.eval(abs);
        let mut ib = ab.idx.eval(abs);
        let mut id = ad.idx.eval(abs);
        let add = m.addend.map(|r| regs[r]);
        // SAFETY: as in `run_dot_accum` — run-in-box asserted, all three
        // slots proven. The 4-wide batches reorder loads against stores
        // only across arrays proven distinct (the matcher rejects
        // aliases), and no floating-point sum is reassociated: each
        // point computes exactly `a*b` or `a*b + k` as the interpreter
        // would.
        unsafe {
            let mut k = 0usize;
            if let Some(v) = add {
                while k + 4 <= n {
                    let p0 = lrel(aw, ia) * lrel(bw, ib) + v;
                    let p1 = lrel(aw, ia + da) * lrel(bw, ib + db) + v;
                    let p2 = lrel(aw, ia + 2 * da) * lrel(bw, ib + 2 * db) + v;
                    let p3 = lrel(aw, ia + 3 * da) * lrel(bw, ib + 3 * db) + v;
                    srel(dw, id, p0);
                    srel(dw, id + dd, p1);
                    srel(dw, id + 2 * dd, p2);
                    srel(dw, id + 3 * dd, p3);
                    ia += 4 * da;
                    ib += 4 * db;
                    id += 4 * dd;
                    k += 4;
                }
                while k < n {
                    srel(dw, id, lrel(aw, ia) * lrel(bw, ib) + v);
                    ia += da;
                    ib += db;
                    id += dd;
                    k += 1;
                }
            } else {
                while k + 4 <= n {
                    let p0 = lrel(aw, ia) * lrel(bw, ib);
                    let p1 = lrel(aw, ia + da) * lrel(bw, ib + db);
                    let p2 = lrel(aw, ia + 2 * da) * lrel(bw, ib + 2 * db);
                    let p3 = lrel(aw, ia + 3 * da) * lrel(bw, ib + 3 * db);
                    srel(dw, id, p0);
                    srel(dw, id + dd, p1);
                    srel(dw, id + 2 * dd, p2);
                    srel(dw, id + 3 * dd, p3);
                    ia += 4 * da;
                    ib += 4 * db;
                    id += 4 * dd;
                    k += 4;
                }
                while k < n {
                    srel(dw, id, lrel(aw, ia) * lrel(bw, ib));
                    ia += da;
                    ib += db;
                    id += dd;
                    k += 1;
                }
            }
        }
    }

    /// The optimized run-at-a-time tape interpreter: scratch borrowed by
    /// the caller once per run, per-slot indices maintained
    /// incrementally, proven accesses branch-free, unproven accesses
    /// checked with an allocation-free fault.
    fn run_tape(
        &self,
        regs: &mut [f64],
        abs: &mut [i64],
        idxs: &mut Vec<i64>,
        n: usize,
    ) -> Result<(), KernelFault> {
        idxs.clear();
        idxs.extend(self.accesses.iter().map(|a| a.idx.eval(abs)));
        let last = abs.len() - 1;
        for _ in 0..n {
            for ins in &self.body {
                match ins {
                    CInstr::Const { dst, val } => regs[*dst] = *val,
                    CInstr::IdxVal { dst, level } => regs[*dst] = abs[*level] as f64,
                    CInstr::Load { dst, slot } => {
                        let a = &self.accesses[*slot];
                        let i = idxs[*slot];
                        regs[*dst] = if a.proven {
                            // SAFETY: proven over the box; run-in-box
                            // asserted by `execute_run`.
                            unsafe { self.arrays[a.arr].read_f64_unchecked(i as usize) }
                        } else {
                            let region = &self.arrays[a.arr];
                            if i < 0 || i as usize >= region.len() {
                                return Err(KernelFault {
                                    arr: a.arr,
                                    index: i,
                                    len: region.len(),
                                });
                            }
                            region.read_f64(i as usize)
                        };
                    }
                    CInstr::Bin { dst, op, a, b } => regs[*dst] = eval_bin(*op, regs[*a], regs[*b]),
                    CInstr::Neg { dst, a } => regs[*dst] = -regs[*a],
                    CInstr::Call1 { dst, f, a } => regs[*dst] = eval_call1(*f, regs[*a]),
                    CInstr::Call2 { dst, f, a, b } => {
                        regs[*dst] = eval_call2(*f, regs[*a], regs[*b]);
                    }
                    CInstr::Store {
                        src,
                        slot,
                        accumulate,
                    } => {
                        let a = &self.accesses[*slot];
                        let i = idxs[*slot];
                        let v = regs[*src];
                        if a.proven {
                            // SAFETY: proven over the box; run-in-box
                            // asserted by `execute_run`. The plain
                            // load-add-store accumulate is exact under
                            // the executor's serialization of
                            // same-location accesses (module docs).
                            unsafe {
                                if *accumulate {
                                    self.arrays[a.arr].accum_f64_unchecked(i as usize, v);
                                } else {
                                    self.arrays[a.arr].write_f64_unchecked(i as usize, v);
                                }
                            }
                        } else {
                            let region = &self.arrays[a.arr];
                            if i < 0 || i as usize >= region.len() {
                                return Err(KernelFault {
                                    arr: a.arr,
                                    index: i,
                                    len: region.len(),
                                });
                            }
                            if *accumulate {
                                region.fetch_add_f64(i as usize, v);
                            } else {
                                region.write_f64(i as usize, v);
                            }
                        }
                    }
                }
            }
            for (i, a) in self.accesses.iter().enumerate() {
                idxs[i] += a.stride;
            }
            abs[last] += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::interp::Value;
    use crate::lang::lower::{lower_forall, LoweredForall};
    use crate::lang::parser::parse;
    use crate::lang::Stmt;

    /// Lower the first `forall` of `main` with the given free bindings.
    fn lower_src(src: &str, bindings: &[(&str, Value)]) -> LoweredForall {
        let p = parse(src).unwrap();
        let main = p.get_fn("main").unwrap();
        let Stmt::Forall {
            var,
            from,
            to,
            body,
            ..
        } = main
            .body
            .iter()
            .find(|s| matches!(s, Stmt::Forall { .. }))
            .unwrap()
        else {
            unreachable!()
        };
        let resolve = |name: &str| -> Option<Value> {
            bindings
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
        };
        let f = |e: &crate::lang::Expr| match e {
            crate::lang::Expr::Num(n) => *n as i64,
            _ => panic!("test bounds must be literal"),
        };
        lower_forall(var, f(from), f(to), body, &resolve).unwrap()
    }

    /// Run the compiled kernel over the full nest, run-at-a-time.
    fn run_all(c: &CompiledKernel, trips: &[u64]) -> Result<(), KernelFault> {
        let depth = trips.len();
        let combos: u64 = trips[..depth - 1].iter().product();
        for w in 0..combos {
            let mut prefix = vec![0i64; depth - 1];
            let mut rem = w;
            for (k, &n) in trips[..depth - 1].iter().enumerate().rev() {
                prefix[k] = (rem % n) as i64;
                rem /= n;
            }
            c.execute_run(&prefix, 0, trips[depth - 1] as i64)?;
        }
        Ok(())
    }

    #[test]
    fn matmul_compiles_to_dot_accum_and_matches_interpreter() {
        let n = 6usize;
        let src = "fn main() {
            forall i in 0..6 {
              forall j in 0..6 {
                for k in 0..6 {
                  c[i * 6 + j] += a[i * 6 + k] * b[k * 6 + j];
                }
              }
            }
          }";
        let data: Vec<f64> = (0..n * n).map(|v| (v as f64) * 0.37 - 3.1).collect();
        let a = SharedRegion::from_f64(&data);
        let b = SharedRegion::from_f64(&data.iter().map(|x| x * 1.5).collect::<Vec<_>>());
        let c1 = SharedRegion::new(n * n);
        let c2 = SharedRegion::new(n * n);
        let bind = |c: &SharedRegion| {
            vec![
                ("a", Value::Arr(a.clone())),
                ("b", Value::Arr(b.clone())),
                ("c", Value::Arr(c.clone())),
            ]
        };
        // Interpreted point-at-a-time reference.
        let l1 = lower_src(src, &bind(&c1));
        for i in 0..n as i64 {
            for j in 0..n as i64 {
                for k in 0..n as i64 {
                    l1.kernel.execute(&[i, j, k]).unwrap();
                }
            }
        }
        // Compiled run-at-a-time.
        let l2 = lower_src(src, &bind(&c2));
        let compiled = compile(&l2.kernel, &l2.nest.trip_counts);
        assert_eq!(compiled.info().plan, "dot-accum");
        assert!(compiled.info().all_proven);
        run_all(&compiled, &l2.nest.trip_counts).unwrap();
        // Bit-identical, not just close: the compiled reduction keeps
        // sequential order.
        assert_eq!(c1.to_f64_vec(), c2.to_f64_vec());
    }

    #[test]
    fn elementwise_product_compiles_to_fma_map() {
        let src = "fn main() {
            forall i in 0..4 {
              forall j in 0..5 {
                d[i * 5 + j] = x[i * 5 + j] * y[i * 5 + j];
              }
            }
          }";
        let x = SharedRegion::from_f64(&(0..20).map(|v| v as f64 * 0.5).collect::<Vec<_>>());
        let y = SharedRegion::from_f64(&(0..20).map(|v| v as f64 + 1.0).collect::<Vec<_>>());
        let d = SharedRegion::new(20);
        let l = lower_src(
            src,
            &[
                ("x", Value::Arr(x.clone())),
                ("y", Value::Arr(y.clone())),
                ("d", Value::Arr(d.clone())),
            ],
        );
        let c = compile(&l.kernel, &l.nest.trip_counts);
        assert_eq!(c.info().plan, "fma-map");
        run_all(&c, &l.nest.trip_counts).unwrap();
        for v in 0..20 {
            assert_eq!(d.read_f64(v), (v as f64 * 0.5) * (v as f64 + 1.0));
        }
    }

    #[test]
    fn aliasing_store_falls_back_to_tape() {
        // d aliases x: the monomorphized shapes must refuse, the tape
        // must still produce the sequential answer.
        let region = SharedRegion::from_f64(&(0..8).map(|v| v as f64).collect::<Vec<_>>());
        let src = "fn main() {
            forall i in 0..8 { d[i] = x[i] * x[i]; }
          }";
        let l = lower_src(
            src,
            &[
                ("x", Value::Arr(region.clone())),
                ("d", Value::Arr(region.clone())),
            ],
        );
        let c = compile(&l.kernel, &l.nest.trip_counts);
        assert_eq!(c.info().plan, "tape", "aliased map must not monomorphize");
        c.execute_run(&[], 0, 8).unwrap();
        for v in 0..8 {
            assert_eq!(region.read_f64(v), (v * v) as f64);
        }
    }

    #[test]
    fn unproven_access_keeps_checked_fallback_and_faults_lazily() {
        // a[i + 3] over i in 0..10 against len 8: max index 12 — proof
        // fails, kernel stays fallible, and the fault formats like the
        // interpreter's error.
        let src = "fn main() { forall i in 0..10 { a[i + 3] = 1; } }";
        let a = SharedRegion::new(8);
        let l = lower_src(src, &[("a", Value::Arr(a.clone()))]);
        let c = compile(&l.kernel, &l.nest.trip_counts);
        assert_eq!(c.info().plan, "tape");
        assert!(!c.info().all_proven);
        assert!(c.execute_run(&[], 0, 5).is_ok(), "indices 3..=7 fit");
        let fault = c.execute_run(&[], 5, 10).unwrap_err();
        assert_eq!(fault.index, 8);
        assert_eq!(fault.len, 8);
        assert!(fault.to_string().contains("out of bounds"));
    }

    #[test]
    fn constant_folding_and_dce_shrink_the_tape() {
        // `2 * 3` folds; the dead `let` (proven load) disappears.
        let src = "fn main() {
            forall i in 0..8 {
              let dead = a[i];
              b[i] = a[i] * (2 * 3);
            }
          }";
        let a = SharedRegion::from_f64(&[1.0; 8]);
        let b = SharedRegion::new(8);
        let l = lower_src(
            src,
            &[("a", Value::Arr(a.clone())), ("b", Value::Arr(b.clone()))],
        );
        let c = compile(&l.kernel, &l.nest.trip_counts);
        let info = c.info();
        // The folded constant hoists to the preamble; the body keeps only
        // live-load / mul / store.
        assert_eq!(info.body, 3, "{info:?}");
        c.execute_run(&[], 0, 8).unwrap();
        assert_eq!(b.read_f64(3), 6.0);
    }

    #[test]
    fn dead_unproven_load_is_kept_for_fault_parity() {
        let src = "fn main() {
            forall i in 0..10 {
              let dead = a[i + 3];
              b[i] = i;
            }
          }";
        let a = SharedRegion::new(8);
        let b = SharedRegion::new(16);
        let l = lower_src(
            src,
            &[("a", Value::Arr(a.clone())), ("b", Value::Arr(b.clone()))],
        );
        let c = compile(&l.kernel, &l.nest.trip_counts);
        let fault = c.execute_run(&[], 0, 10).unwrap_err();
        assert_eq!(fault.index, 8, "the dead load must still fault");
        // Exactly like the interpreted kernel.
        assert!(l.kernel.execute(&[5]).is_err());
    }

    #[test]
    fn preamble_hoists_run_invariants() {
        // `i * 10` and the constant hoist; only the store (plus the
        // innermost index value) stays per-point.
        let src = "fn main() {
            forall i in 0..4 {
              forall j in 0..8 {
                b[i * 8 + j] = i * 10 + j;
              }
            }
          }";
        let b = SharedRegion::new(32);
        let l = lower_src(src, &[("b", Value::Arr(b.clone()))]);
        let c = compile(&l.kernel, &l.nest.trip_counts);
        let info = c.info();
        assert!(info.hoisted >= 2, "{info:?}");
        run_all(&c, &l.nest.trip_counts).unwrap();
        for v in 0..32 {
            assert_eq!(b.read_f64(v), ((v / 8) * 10 + v % 8) as f64);
        }
    }

    #[test]
    fn runs_outside_the_box_panic_instead_of_reading() {
        let src = "fn main() { forall i in 0..8 { a[i] = 1; } }";
        let a = SharedRegion::new(8);
        let l = lower_src(src, &[("a", Value::Arr(a.clone()))]);
        let c = compile(&l.kernel, &l.nest.trip_counts);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.execute_run(&[], 0, 9)));
        assert!(r.is_err(), "a run past the trip count must panic");
    }

    #[test]
    fn scan_recurrence_runs_on_the_tape_bitwise() {
        let src = "fn main() {
            forall i in 0..31 { a[i + 1] = a[i] + i; }
          }";
        let mk = || SharedRegion::from_f64(&(0..32).map(|v| v as f64 * 0.125).collect::<Vec<_>>());
        let (a1, a2) = (mk(), mk());
        let l1 = lower_src(src, &[("a", Value::Arr(a1.clone()))]);
        for i in 0..31 {
            l1.kernel.execute(&[i]).unwrap();
        }
        let l2 = lower_src(src, &[("a", Value::Arr(a2.clone()))]);
        let c = compile(&l2.kernel, &l2.nest.trip_counts);
        assert_eq!(c.info().plan, "tape");
        assert!(c.info().all_proven);
        c.execute_run(&[], 0, 31).unwrap();
        assert_eq!(a1.to_f64_vec(), a2.to_f64_vec());
    }
}
