//! Lowering LITL-X `forall` nests to the SSP loop-nest IR.
//!
//! §3.3 of the paper wants loops to travel a compile→schedule→execute
//! pipeline: pick the most profitable loop level, software-pipeline it,
//! partition the pipelined code into threads. The front of that pipeline
//! is this pass: a `forall` statement whose body is a perfect nest of
//! `forall`/`for` loops over an **affine** innermost body (stores and
//! `let`s of pure arithmetic, with array indices affine in the induction
//! variables) lowers to
//!
//! * an [`htvm_ssp::ir::LoopNest`] — trip counts per level, one op per
//!   load/arith/store with latencies and resource classes, and dependence
//!   **distance vectors** from uniformly-generated array-access pairs; and
//! * a [`Kernel`] — the body compiled to a flat register tape over the
//!   program's [`SharedRegion`] arrays, executable at any iteration point
//!   without touching the interpreter's environment chain.
//!
//! Anything non-affine **bails out** ([`LowerBail`]) and the interpreter
//! falls back to the naive flat fan-out; a bail is a lost optimization,
//! never an error.
//!
//! Dependence analysis is conservative where it must be: accesses to one
//! array with different coefficient vectors abort the lowering, and for
//! uniformly-generated pairs *every* realizable distance solution is
//! enumerated (distance digits are symmetric around zero, so several can
//! coexist); a pair whose solution set explodes aborts rather than risk
//! an under-approximated dependence set.

use std::collections::HashMap;

use htvm_core::SharedRegion;
use htvm_ssp::ir::{Dep, LoopNest, Op, OpKind};

use super::ast::{BinOp, Expr, Stmt};
use super::interp::Value;

/// Why lowering gave up on a nest (diagnostic; the caller falls back to
/// the naive executor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerBail {
    /// A loop bound is not a compile-time constant of the enclosing scope
    /// (e.g. triangular nests whose inner bound uses an outer induction
    /// variable).
    NonConstBound(String),
    /// A statement form the kernel compiler does not handle.
    UnsupportedStmt(String),
    /// An expression form the kernel compiler does not handle.
    UnsupportedExpr(String),
    /// An array index is not affine in the induction variables.
    NonAffineIndex(String),
    /// Two accesses to one array have different coefficient vectors —
    /// dependence distances would not be constant.
    NonUniformAccess(String),
    /// The dependence-distance solution set of an access pair is too
    /// large to enumerate — the nest's dependence structure is too
    /// irregular to pipeline safely.
    NonInjectiveAccess(String),
    /// A level has a zero (or negative) trip count; nothing to pipeline.
    EmptyLevel(String),
    /// Induction variable shadowing across levels.
    ShadowedVar(String),
}

impl std::fmt::Display for LowerBail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerBail::NonConstBound(s) => write!(f, "non-constant loop bound: {s}"),
            LowerBail::UnsupportedStmt(s) => write!(f, "unsupported statement: {s}"),
            LowerBail::UnsupportedExpr(s) => write!(f, "unsupported expression: {s}"),
            LowerBail::NonAffineIndex(s) => write!(f, "non-affine index: {s}"),
            LowerBail::NonUniformAccess(s) => write!(f, "non-uniform accesses to `{s}`"),
            LowerBail::NonInjectiveAccess(s) => write!(f, "non-injective accesses to `{s}`"),
            LowerBail::EmptyLevel(s) => write!(f, "empty loop level `{s}`"),
            LowerBail::ShadowedVar(s) => write!(f, "shadowed induction variable `{s}`"),
        }
    }
}

/// Resolve a free (non-induction) variable of the nest to its runtime
/// value — the interpreter passes its environment lookup.
pub type Resolver<'a> = dyn Fn(&str) -> Option<Value> + 'a;

/// An affine index expression: `Σ coefs[l]·i_l + offset` over the
/// absolute induction-variable values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineIdx {
    /// One coefficient per nest level, outermost first.
    pub coefs: Vec<i64>,
    /// Constant offset.
    pub offset: i64,
}

impl AffineIdx {
    fn constant(depth: usize, offset: i64) -> Self {
        Self {
            coefs: vec![0; depth],
            offset,
        }
    }

    /// Evaluate at absolute induction values.
    pub fn eval(&self, abs: &[i64]) -> i64 {
        self.coefs.iter().zip(abs).map(|(c, i)| c * i).sum::<i64>() + self.offset
    }
}

/// Unary math builtins the kernel supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn {
    /// `sqrt(x)`
    Sqrt,
    /// `abs(x)`
    Abs,
    /// `exp(x)`
    Exp,
    /// `log(x)`
    Log,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `floor(x)`
    Floor,
}

/// Binary math builtins the kernel supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn2 {
    /// `pow(x, y)`
    Pow,
    /// `min(x, y)`
    Min,
    /// `max(x, y)`
    Max,
}

/// One instruction of the compiled body tape.
#[derive(Debug, Clone, PartialEq)]
pub enum KInstr {
    /// `r[dst] = val`
    Const {
        /// Destination register.
        dst: usize,
        /// Literal value.
        val: f64,
    },
    /// `r[dst] = (absolute induction value at level)`
    IdxVal {
        /// Destination register.
        dst: usize,
        /// Nest level.
        level: usize,
    },
    /// `r[dst] = arrays[arr][idx]`
    Load {
        /// Destination register.
        dst: usize,
        /// Array table index.
        arr: usize,
        /// Affine index.
        idx: AffineIdx,
    },
    /// `r[dst] = r[a] ⊕ r[b]`
    Bin {
        /// Destination register.
        dst: usize,
        /// Operator.
        op: BinOp,
        /// Left operand register.
        a: usize,
        /// Right operand register.
        b: usize,
    },
    /// `r[dst] = -r[a]`
    Neg {
        /// Destination register.
        dst: usize,
        /// Operand register.
        a: usize,
    },
    /// `r[dst] = f(r[a])`
    Call1 {
        /// Destination register.
        dst: usize,
        /// Builtin.
        f: MathFn,
        /// Operand register.
        a: usize,
    },
    /// `r[dst] = f(r[a], r[b])`
    Call2 {
        /// Destination register.
        dst: usize,
        /// Builtin.
        f: MathFn2,
        /// Operand registers.
        a: usize,
        /// Second operand register.
        b: usize,
    },
    /// `arrays[arr][idx] (+)= r[src]`
    Store {
        /// Source register.
        src: usize,
        /// Array table index.
        arr: usize,
        /// Affine index.
        idx: AffineIdx,
        /// `+=` (atomic accumulate) rather than `=`.
        accumulate: bool,
    },
}

/// The compiled innermost body: a register tape over shared arrays,
/// executable at any iteration point by any thread.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Instructions in program order.
    pub instrs: Vec<KInstr>,
    /// Register count.
    pub regs: usize,
    /// Array table (deduplicated by region identity).
    pub arrays: Vec<SharedRegion>,
    /// Absolute lower bound per level: the executor hands 0-based indices,
    /// the kernel translates.
    pub los: Vec<i64>,
}

thread_local! {
    /// Reusable evaluation scratch (registers + absolute indices): the
    /// kernel runs once per iteration point on the hot path, and a heap
    /// allocation per point would rival the tape's arithmetic cost.
    static KERNEL_SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<i64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl Kernel {
    /// Execute one iteration point given 0-based per-level indices.
    pub fn execute(&self, idx0: &[i64]) -> Result<(), String> {
        KERNEL_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (regs, abs) = &mut *scratch;
            abs.clear();
            abs.extend(self.los.iter().zip(idx0).map(|(lo, i)| lo + i));
            regs.clear();
            regs.resize(self.regs, 0.0);
            self.execute_in(abs, regs)
        })
    }

    /// The tape proper, over caller-provided scratch.
    fn execute_in(&self, abs: &[i64], r: &mut [f64]) -> Result<(), String> {
        let at = |arr: &SharedRegion, idx: &AffineIdx| -> Result<usize, String> {
            let i = idx.eval(abs);
            if i < 0 || i as usize >= arr.len() {
                return Err(format!(
                    "index {i} out of bounds for array of length {}",
                    arr.len()
                ));
            }
            Ok(i as usize)
        };
        for ins in &self.instrs {
            match ins {
                KInstr::Const { dst, val } => r[*dst] = *val,
                KInstr::IdxVal { dst, level } => r[*dst] = abs[*level] as f64,
                KInstr::Load { dst, arr, idx } => {
                    let a = &self.arrays[*arr];
                    r[*dst] = a.read_f64(at(a, idx)?);
                }
                KInstr::Bin { dst, op, a, b } => {
                    let (x, y) = (r[*a], r[*b]);
                    r[*dst] = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Rem => x % y,
                        BinOp::Eq => (x == y) as i64 as f64,
                        BinOp::Ne => (x != y) as i64 as f64,
                        BinOp::Lt => (x < y) as i64 as f64,
                        BinOp::Le => (x <= y) as i64 as f64,
                        BinOp::Gt => (x > y) as i64 as f64,
                        BinOp::Ge => (x >= y) as i64 as f64,
                        BinOp::And | BinOp::Or => unreachable!("bailed at compile time"),
                    };
                }
                KInstr::Neg { dst, a } => r[*dst] = -r[*a],
                KInstr::Call1 { dst, f, a } => {
                    let x = r[*a];
                    r[*dst] = match f {
                        MathFn::Sqrt => x.sqrt(),
                        MathFn::Abs => x.abs(),
                        MathFn::Exp => x.exp(),
                        MathFn::Log => x.ln(),
                        MathFn::Sin => x.sin(),
                        MathFn::Cos => x.cos(),
                        MathFn::Floor => x.floor(),
                    };
                }
                KInstr::Call2 { dst, f, a, b } => {
                    let (x, y) = (r[*a], r[*b]);
                    r[*dst] = match f {
                        MathFn2::Pow => x.powf(y),
                        MathFn2::Min => x.min(y),
                        MathFn2::Max => x.max(y),
                    };
                }
                KInstr::Store {
                    src,
                    arr,
                    idx,
                    accumulate,
                } => {
                    let a = &self.arrays[*arr];
                    let i = at(a, idx)?;
                    if *accumulate {
                        a.fetch_add_f64(i, r[*src]);
                    } else {
                        a.write_f64(i, r[*src]);
                    }
                }
            }
        }
        Ok(())
    }
}

/// The result of lowering a `forall` nest.
#[derive(Debug, Clone)]
pub struct LoweredForall {
    /// The loop-nest IR handed to the SSP scheduler.
    pub nest: LoopNest,
    /// The compiled body.
    pub kernel: Kernel,
    /// Levels that were `forall` (parallel) in the source — the only
    /// levels the executor may partition.
    pub parallel_levels: Vec<usize>,
}

/// One collected nest level.
struct LevelInfo {
    var: String,
    lo: i64,
    n: u64,
    parallel: bool,
}

/// An array access recorded for dependence analysis.
struct Access {
    arr: usize,
    idx: AffineIdx,
    write: bool,
    op: usize,
}

/// Lower a `forall var in from..to { body }` whose bounds the caller has
/// already evaluated. See module docs for what qualifies.
pub fn lower_forall(
    var: &str,
    from: i64,
    to: i64,
    body: &[Stmt],
    resolve: &Resolver<'_>,
) -> Result<LoweredForall, LowerBail> {
    // 1. Collect the perfect nest.
    let mut levels = vec![LevelInfo {
        var: var.to_string(),
        lo: from,
        n: trip(var, from, to)?,
        parallel: true,
    }];
    let mut cur = body;
    loop {
        let induction: Vec<&str> = levels.iter().map(|l| l.var.as_str()).collect();
        match cur {
            [Stmt::Forall {
                var,
                from,
                to,
                body,
                hints: _,
            }] => {
                if induction.contains(&var.as_str()) {
                    return Err(LowerBail::ShadowedVar(var.clone()));
                }
                let (lo, hi) = bounds(from, to, &induction, resolve)?;
                levels.push(LevelInfo {
                    var: var.clone(),
                    lo,
                    n: trip(var, lo, hi)?,
                    parallel: true,
                });
                cur = body;
            }
            [Stmt::For(var, from, to, body)] => {
                if induction.contains(&var.as_str()) {
                    return Err(LowerBail::ShadowedVar(var.clone()));
                }
                let (lo, hi) = bounds(from, to, &induction, resolve)?;
                levels.push(LevelInfo {
                    var: var.clone(),
                    lo,
                    n: trip(var, lo, hi)?,
                    parallel: false,
                });
                cur = body;
            }
            _ => break,
        }
    }

    // 2. Compile the innermost body to a tape, collecting ops + accesses.
    let mut c = Compiler {
        levels: &levels,
        resolve,
        instrs: Vec::new(),
        regs: 0,
        arrays: Vec::new(),
        array_names: Vec::new(),
        scalars: HashMap::new(),
        reg_producer: Vec::new(),
        ops: Vec::new(),
        deps: Vec::new(),
        accesses: Vec::new(),
    };
    for stmt in cur {
        c.compile_stmt(stmt)?;
    }
    if c.accesses.iter().all(|a| !a.write) {
        // A nest with no stores has no observable effect worth pipelining.
        return Err(LowerBail::UnsupportedStmt("body performs no stores".into()));
    }

    // 3. Cross-iteration dependences from access pairs.
    c.memory_deps()?;

    let nest = LoopNest {
        name: format!("litlx:{var}"),
        trip_counts: levels.iter().map(|l| l.n).collect(),
        ops: c.ops,
        deps: c.deps,
    };
    nest.validate().map_err(LowerBail::UnsupportedStmt)?;
    Ok(LoweredForall {
        kernel: Kernel {
            instrs: c.instrs,
            regs: c.regs,
            arrays: c.arrays,
            los: levels.iter().map(|l| l.lo).collect(),
        },
        parallel_levels: levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.parallel)
            .map(|(i, _)| i)
            .collect(),
        nest,
    })
}

fn trip(var: &str, lo: i64, hi: i64) -> Result<u64, LowerBail> {
    if hi <= lo {
        return Err(LowerBail::EmptyLevel(var.to_string()));
    }
    Ok((hi - lo) as u64)
}

/// Evaluate a pair of loop-bound expressions to constants of the enclosing
/// scope (must not mention induction variables).
fn bounds(
    from: &Expr,
    to: &Expr,
    induction: &[&str],
    resolve: &Resolver<'_>,
) -> Result<(i64, i64), LowerBail> {
    let lo = const_int(from, induction, resolve)?;
    let hi = const_int(to, induction, resolve)?;
    Ok((lo, hi))
}

/// Constant-fold an expression over the enclosing scope. Induction
/// variables are not constants here.
fn const_num(e: &Expr, induction: &[&str], resolve: &Resolver<'_>) -> Result<f64, LowerBail> {
    let bail = || LowerBail::NonConstBound(format!("{e:?}"));
    match e {
        Expr::Num(n) => Ok(*n),
        Expr::Var(v) => {
            if induction.contains(&v.as_str()) {
                return Err(bail());
            }
            match resolve(v) {
                Some(Value::Num(n)) => Ok(n),
                _ => Err(bail()),
            }
        }
        Expr::Neg(x) => Ok(-const_num(x, induction, resolve)?),
        Expr::Bin(op, l, r) => {
            let a = const_num(l, induction, resolve)?;
            let b = const_num(r, induction, resolve)?;
            match op {
                BinOp::Add => Ok(a + b),
                BinOp::Sub => Ok(a - b),
                BinOp::Mul => Ok(a * b),
                BinOp::Div => Ok(a / b),
                BinOp::Rem => Ok(a % b),
                _ => Err(bail()),
            }
        }
        _ => Err(bail()),
    }
}

fn const_int(e: &Expr, induction: &[&str], resolve: &Resolver<'_>) -> Result<i64, LowerBail> {
    let n = const_num(e, induction, resolve)?;
    if n.fract() != 0.0 || n.abs() > 1e15 {
        return Err(LowerBail::NonConstBound(format!("{e:?}")));
    }
    Ok(n as i64)
}

struct Compiler<'a> {
    levels: &'a [LevelInfo],
    resolve: &'a Resolver<'a>,
    instrs: Vec<KInstr>,
    regs: usize,
    arrays: Vec<SharedRegion>,
    array_names: Vec<String>,
    /// Let-bound scalars → register.
    scalars: HashMap<String, usize>,
    /// Producing op of each register (None for constants/index values).
    reg_producer: Vec<Option<usize>>,
    ops: Vec<Op>,
    deps: Vec<Dep>,
    accesses: Vec<Access>,
}

impl Compiler<'_> {
    fn depth(&self) -> usize {
        self.levels.len()
    }

    fn fresh(&mut self, producer: Option<usize>) -> usize {
        let r = self.regs;
        self.regs += 1;
        self.reg_producer.push(producer);
        r
    }

    fn push_op(&mut self, name: impl Into<String>, latency: u32, kind: OpKind) -> usize {
        self.ops.push(Op::new(name, latency, kind));
        self.ops.len() - 1
    }

    fn dep_from(&mut self, producer: Option<usize>, to: usize) {
        if let Some(from) = producer {
            self.deps.push(Dep::independent(from, to, self.depth()));
        }
    }

    fn level_of(&self, name: &str) -> Option<usize> {
        self.levels.iter().position(|l| l.var == name)
    }

    fn array_id(&mut self, name: &str) -> Result<usize, LowerBail> {
        let region = match (self.resolve)(name) {
            Some(Value::Arr(a)) => a,
            _ => {
                return Err(LowerBail::UnsupportedExpr(format!(
                    "`{name}` is not an array"
                )))
            }
        };
        // Deduplicate by identity: two names may alias one region.
        if let Some(i) = self.arrays.iter().position(|a| a.same_region(&region)) {
            return Ok(i);
        }
        self.arrays.push(region);
        self.array_names.push(name.to_string());
        Ok(self.arrays.len() - 1)
    }

    /// Extract an affine form for an index expression.
    fn affine(&self, e: &Expr) -> Result<AffineIdx, LowerBail> {
        let bail = || LowerBail::NonAffineIndex(format!("{e:?}"));
        let depth = self.depth();
        match e {
            Expr::Num(n) => {
                if n.fract() != 0.0 {
                    return Err(bail());
                }
                Ok(AffineIdx::constant(depth, *n as i64))
            }
            Expr::Var(v) => {
                if let Some(l) = self.level_of(v) {
                    let mut a = AffineIdx::constant(depth, 0);
                    a.coefs[l] = 1;
                    return Ok(a);
                }
                let induction: Vec<&str> = self.levels.iter().map(|l| l.var.as_str()).collect();
                let n = const_num(e, &induction, self.resolve).map_err(|_| bail())?;
                if n.fract() != 0.0 {
                    return Err(bail());
                }
                let _ = v;
                Ok(AffineIdx::constant(depth, n as i64))
            }
            Expr::Neg(x) => {
                let mut a = self.affine(x)?;
                for c in &mut a.coefs {
                    *c = -*c;
                }
                a.offset = -a.offset;
                Ok(a)
            }
            Expr::Bin(BinOp::Add, l, r) => {
                let (a, b) = (self.affine(l)?, self.affine(r)?);
                Ok(combine(&a, &b, 1))
            }
            Expr::Bin(BinOp::Sub, l, r) => {
                let (a, b) = (self.affine(l)?, self.affine(r)?);
                Ok(combine(&a, &b, -1))
            }
            Expr::Bin(BinOp::Mul, l, r) => {
                let (a, b) = (self.affine(l)?, self.affine(r)?);
                let scale = |k: i64, x: &AffineIdx| AffineIdx {
                    coefs: x.coefs.iter().map(|c| c * k).collect(),
                    offset: x.offset * k,
                };
                if a.coefs.iter().all(|&c| c == 0) {
                    Ok(scale(a.offset, &b))
                } else if b.coefs.iter().all(|&c| c == 0) {
                    Ok(scale(b.offset, &a))
                } else {
                    Err(bail())
                }
            }
            _ => Err(bail()),
        }
    }

    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerBail> {
        match stmt {
            Stmt::Let(name, e) => {
                let (r, _) = self.compile_expr(e)?;
                self.scalars.insert(name.clone(), r);
                Ok(())
            }
            Stmt::StoreIndex {
                array,
                index,
                value,
                accumulate,
            } => {
                let arr = self.array_id(array)?;
                let idx = self.affine(index)?;
                let (src, producer) = self.compile_expr(value)?;
                let lat = if *accumulate { 5 } else { 1 };
                let op = self.push_op(format!("store {array}"), lat, OpKind::Mem);
                self.dep_from(producer, op);
                self.accesses.push(Access {
                    arr,
                    idx: idx.clone(),
                    write: true,
                    op,
                });
                self.instrs.push(KInstr::Store {
                    src,
                    arr,
                    idx,
                    accumulate: *accumulate,
                });
                Ok(())
            }
            other => Err(LowerBail::UnsupportedStmt(stmt_name(other).to_string())),
        }
    }

    /// Compile a pure value expression; returns (register, producing op).
    fn compile_expr(&mut self, e: &Expr) -> Result<(usize, Option<usize>), LowerBail> {
        match e {
            Expr::Num(n) => {
                let r = self.fresh(None);
                self.instrs.push(KInstr::Const { dst: r, val: *n });
                Ok((r, None))
            }
            Expr::Var(v) => {
                if let Some(l) = self.level_of(v) {
                    let r = self.fresh(None);
                    self.instrs.push(KInstr::IdxVal { dst: r, level: l });
                    return Ok((r, None));
                }
                if let Some(&r) = self.scalars.get(v) {
                    return Ok((r, self.reg_producer[r]));
                }
                match (self.resolve)(v) {
                    Some(Value::Num(n)) => {
                        let r = self.fresh(None);
                        self.instrs.push(KInstr::Const { dst: r, val: n });
                        Ok((r, None))
                    }
                    _ => Err(LowerBail::UnsupportedExpr(format!(
                        "free variable `{v}` is not a number"
                    ))),
                }
            }
            Expr::Index(arr, idx) => {
                let Expr::Var(name) = arr.as_ref() else {
                    return Err(LowerBail::UnsupportedExpr(format!("{arr:?}")));
                };
                let a = self.array_id(name)?;
                let aff = self.affine(idx)?;
                let op = self.push_op(format!("load {name}"), 4, OpKind::Mem);
                self.accesses.push(Access {
                    arr: a,
                    idx: aff.clone(),
                    write: false,
                    op,
                });
                let r = self.fresh(Some(op));
                self.instrs.push(KInstr::Load {
                    dst: r,
                    arr: a,
                    idx: aff,
                });
                Ok((r, Some(op)))
            }
            Expr::Neg(x) => {
                let (a, pa) = self.compile_expr(x)?;
                let op = self.push_op("neg", 1, OpKind::Alu);
                self.dep_from(pa, op);
                let r = self.fresh(Some(op));
                self.instrs.push(KInstr::Neg { dst: r, a });
                Ok((r, Some(op)))
            }
            Expr::Bin(op, l, r) => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    // Short-circuit semantics would change error behaviour
                    // under eager evaluation; leave to the interpreter.
                    return Err(LowerBail::UnsupportedExpr("&& / ||".into()));
                }
                let (a, pa) = self.compile_expr(l)?;
                let (b, pb) = self.compile_expr(r)?;
                let (lat, kind) = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        (5, OpKind::Fpu)
                    }
                    _ => (1, OpKind::Alu),
                };
                let o = self.push_op(format!("{op:?}"), lat, kind);
                self.dep_from(pa, o);
                self.dep_from(pb, o);
                let dst = self.fresh(Some(o));
                self.instrs.push(KInstr::Bin { dst, op: *op, a, b });
                Ok((dst, Some(o)))
            }
            Expr::Call(name, args) => {
                let f1 = match name.as_str() {
                    "sqrt" => Some(MathFn::Sqrt),
                    "abs" => Some(MathFn::Abs),
                    "exp" => Some(MathFn::Exp),
                    "log" => Some(MathFn::Log),
                    "sin" => Some(MathFn::Sin),
                    "cos" => Some(MathFn::Cos),
                    "floor" => Some(MathFn::Floor),
                    _ => None,
                };
                if let Some(f) = f1 {
                    if args.len() != 1 {
                        return Err(LowerBail::UnsupportedExpr(format!("{name} arity")));
                    }
                    let (a, pa) = self.compile_expr(&args[0])?;
                    let op = self.push_op(name.clone(), 8, OpKind::Fpu);
                    self.dep_from(pa, op);
                    let dst = self.fresh(Some(op));
                    self.instrs.push(KInstr::Call1 { dst, f, a });
                    return Ok((dst, Some(op)));
                }
                let f2 = match name.as_str() {
                    "pow" => Some(MathFn2::Pow),
                    "min" => Some(MathFn2::Min),
                    "max" => Some(MathFn2::Max),
                    _ => None,
                };
                if let Some(f) = f2 {
                    if args.len() != 2 {
                        return Err(LowerBail::UnsupportedExpr(format!("{name} arity")));
                    }
                    let (a, pa) = self.compile_expr(&args[0])?;
                    let (b, pb) = self.compile_expr(&args[1])?;
                    let op = self.push_op(name.clone(), 8, OpKind::Fpu);
                    self.dep_from(pa, op);
                    self.dep_from(pb, op);
                    let dst = self.fresh(Some(op));
                    self.instrs.push(KInstr::Call2 { dst, f, a, b });
                    return Ok((dst, Some(op)));
                }
                Err(LowerBail::UnsupportedExpr(format!("call to `{name}`")))
            }
            Expr::Not(_) => Err(LowerBail::UnsupportedExpr("!".into())),
        }
    }

    /// Cross-iteration dependences: examine every pair of accesses to one
    /// array where at least one writes, and emit distance vectors (see
    /// module docs for the conservative representative-set construction).
    fn memory_deps(&mut self) -> Result<(), LowerBail> {
        let depth = self.depth();
        let trips: Vec<u64> = self.levels.iter().map(|l| l.n).collect();
        let mut new_deps: Vec<Dep> = Vec::new();
        for i in 0..self.accesses.len() {
            for j in i..self.accesses.len() {
                let (a, b) = (&self.accesses[i], &self.accesses[j]);
                if a.arr != b.arr || (!a.write && !b.write) {
                    continue;
                }
                if i == j && !a.write {
                    continue;
                }
                let name = self.array_names[a.arr].clone();
                if a.idx.coefs != b.idx.coefs {
                    return Err(LowerBail::NonUniformAccess(name));
                }
                // Same location when coef·(I_b − I_a) = offset_a − offset_b.
                let delta = a.idx.offset - b.idx.offset;
                let free: Vec<usize> = (0..depth).filter(|&l| a.idx.coefs[l] == 0).collect();
                let fixed: Vec<usize> = (0..depth).filter(|&l| a.idx.coefs[l] != 0).collect();
                // Enumerate every fixed-level solution of
                // `coef·d = delta` realizable inside the iteration space
                // (distance digits are symmetric around 0, so the map need
                // not be injective — e.g. strides (4,1) admit both (0,2)
                // and (1,−2) for Δ = 2; every solution is a dependence).
                for d_fixed in solve_uniform(&a.idx.coefs, &trips, &fixed, delta, &name)? {
                    let mut v = vec![0i64; depth];
                    for (&l, &d) in fixed.iter().zip(&d_fixed) {
                        v[l] = d;
                    }
                    if v.iter().all(|&x| x == 0) {
                        // Same fixed point: loop-independent dep in program
                        // order, plus a carried dep at every free level
                        // (the location is shared across their iterations),
                        // both directions.
                        if a.op != b.op {
                            let (from, to) = if a.op < b.op {
                                (a.op, b.op)
                            } else {
                                (b.op, a.op)
                            };
                            new_deps.push(Dep::independent(from, to, depth));
                        }
                        for &f in &free {
                            new_deps.push(Dep::carried_at(a.op, b.op, depth, f));
                            if a.op != b.op {
                                new_deps.push(Dep::carried_at(b.op, a.op, depth, f));
                            }
                        }
                        continue;
                    }
                    // Direction from the lexicographic sign.
                    let (src, dst, w): (usize, usize, Vec<i64>) =
                        if *v.iter().find(|&&x| x != 0).expect("nonzero") > 0 {
                            (a.op, b.op, v)
                        } else {
                            (b.op, a.op, v.iter().map(|x| -x).collect())
                        };
                    let p = w.iter().position(|&x| x != 0).expect("nonzero");
                    new_deps.push(Dep {
                        from: src,
                        to: dst,
                        distance: w.clone(),
                    });
                    // Free levels before the first fixed component admit
                    // realized distances carried at that level — both
                    // directions (see module docs).
                    for &f in free.iter().filter(|&&f| f < p) {
                        let mut u = w.clone();
                        u[f] = 1;
                        new_deps.push(Dep {
                            from: src,
                            to: dst,
                            distance: u,
                        });
                        let mut u2: Vec<i64> = w.iter().map(|x| -x).collect();
                        u2[f] = 1;
                        new_deps.push(Dep {
                            from: dst,
                            to: src,
                            distance: u2,
                        });
                    }
                }
            }
        }
        new_deps.sort_by(|a, b| (a.from, a.to, &a.distance).cmp(&(b.from, b.to, &b.distance)));
        new_deps.dedup();
        self.deps.extend(new_deps);
        self.deps
            .sort_by(|a, b| (a.from, a.to, &a.distance).cmp(&(b.from, b.to, &b.distance)));
        self.deps.dedup();
        Ok(())
    }
}

fn combine(a: &AffineIdx, b: &AffineIdx, sign: i64) -> AffineIdx {
    AffineIdx {
        coefs: a
            .coefs
            .iter()
            .zip(&b.coefs)
            .map(|(x, y)| x + sign * y)
            .collect(),
        offset: a.offset + sign * b.offset,
    }
}

fn stmt_name(s: &Stmt) -> &'static str {
    match s {
        Stmt::Let(..) => "let",
        Stmt::Assign(..) => "assignment to an outer scalar",
        Stmt::StoreIndex { .. } => "store",
        Stmt::If(..) => "if",
        Stmt::While(..) => "while",
        Stmt::For(..) => "imperfectly nested for",
        Stmt::Forall { .. } => "imperfectly nested forall",
        Stmt::Spawn(..) => "spawn",
        Stmt::Future(..) => "future",
        Stmt::Atomic(..) => "atomic",
        Stmt::Return(..) => "return",
        Stmt::Expr(..) => "expression statement",
    }
}

/// Cap on enumerated dependence solutions per access pair; beyond this the
/// dependence structure is considered too irregular to pipeline.
const MAX_SOLUTIONS: usize = 32;

/// Enumerate every solution of `Σ coefs[l]·d_l = delta` over the `fixed`
/// levels with `|d_l| < trip_l` — each one is an iteration-distance at
/// which the two accesses touch the same location. Distance digits are
/// symmetric around zero, so several solutions can coexist even for
/// mixed-radix strides. Returns solutions in `fixed` order; bails if the
/// set explodes past [`MAX_SOLUTIONS`].
fn solve_uniform(
    coefs: &[i64],
    trips: &[u64],
    fixed: &[usize],
    delta: i64,
    array: &str,
) -> Result<Vec<Vec<i64>>, LowerBail> {
    // Order fixed levels by |stride| descending and prune with the total
    // reach of the smaller strides.
    let mut order: Vec<usize> = fixed.to_vec();
    order.sort_by_key(|&l| std::cmp::Reverse(coefs[l].abs()));
    let mut reach = vec![0i64; order.len() + 1];
    for k in (0..order.len()).rev() {
        let l = order[k];
        reach[k] = reach[k + 1] + (trips[l] as i64 - 1) * coefs[l].abs();
    }
    struct Search<'a> {
        order: &'a [usize],
        reach: &'a [i64],
        coefs: &'a [i64],
        trips: &'a [u64],
        out: Vec<HashMap<usize, i64>>,
    }
    impl Search<'_> {
        fn rec(&mut self, k: usize, rem: i64, digits: &mut HashMap<usize, i64>) -> bool {
            if k == self.order.len() {
                if rem == 0 {
                    self.out.push(digits.clone());
                }
                return self.out.len() <= MAX_SOLUTIONS;
            }
            let l = self.order[k];
            let s = self.coefs[l];
            let max_d = self.trips[l] as i64 - 1;
            for q in -max_d..=max_d {
                if (rem - q * s).abs() > self.reach[k + 1] {
                    continue;
                }
                digits.insert(l, q);
                let ok = self.rec(k + 1, rem - q * s, digits);
                digits.remove(&l);
                if !ok {
                    return false;
                }
            }
            true
        }
    }
    let mut search = Search {
        order: &order,
        reach: &reach,
        coefs,
        trips,
        out: Vec::new(),
    };
    let mut digits: HashMap<usize, i64> = HashMap::new();
    if !search.rec(0, delta, &mut digits) {
        return Err(LowerBail::NonInjectiveAccess(array.to_string()));
    }
    let out = search.out;
    Ok(out
        .into_iter()
        .map(|m| fixed.iter().map(|l| m[l]).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    /// Lower the first `forall` of `main` with the given free bindings.
    fn lower_src(src: &str, bindings: &[(&str, Value)]) -> Result<LoweredForall, LowerBail> {
        let p = parse(src).unwrap();
        let main = p.get_fn("main").unwrap();
        let Stmt::Forall {
            var,
            from,
            to,
            body,
            ..
        } = main
            .body
            .iter()
            .find(|s| matches!(s, Stmt::Forall { .. }))
            .unwrap()
        else {
            unreachable!()
        };
        let resolve = |name: &str| -> Option<Value> {
            bindings
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
        };
        let get = |e: &Expr| const_int(e, &[], &resolve).unwrap();
        lower_forall(var, get(from), get(to), body, &resolve)
    }

    fn arr(n: usize) -> Value {
        Value::Arr(SharedRegion::new(n))
    }

    #[test]
    fn matmul_nest_lowers_with_k_carried_accumulate() {
        let src = "fn main() {
            forall i in 0..8 {
              forall j in 0..8 {
                for k in 0..8 {
                  c[i * 8 + j] += a[i * 8 + k] * b[k * 8 + j];
                }
              }
            }
          }";
        let l = lower_src(src, &[("a", arr(64)), ("b", arr(64)), ("c", arr(64))]).unwrap();
        assert_eq!(l.nest.trip_counts, vec![8, 8, 8]);
        assert_eq!(l.parallel_levels, vec![0, 1]);
        // The accumulate store is carried by k (level 2) only.
        let store_self: Vec<_> = l
            .nest
            .deps
            .iter()
            .filter(|d| d.from == d.to && d.distance.iter().any(|&x| x != 0))
            .collect();
        assert!(!store_self.is_empty(), "accumulate must self-depend");
        for d in store_self {
            assert_eq!(d.distance, vec![0, 0, 1]);
        }
        assert!(l.nest.validate().is_ok());
    }

    #[test]
    fn carried_shift_produces_outer_distance() {
        // a[(i+1)*m + j] = a[i*m + j] + 1 → flow dep carried at i, dist 1.
        let src = "fn main() {
            forall i in 0..6 {
              forall j in 0..4 {
                a[(i + 1) * 4 + j] = a[i * 4 + j] + 1;
              }
            }
          }";
        let l = lower_src(src, &[("a", arr(64))]).unwrap();
        assert!(
            l.nest
                .deps
                .iter()
                .any(|d| d.distance == vec![1, 0] && d.from != d.to),
            "expected an i-carried flow dep: {:?}",
            l.nest.deps
        );
    }

    #[test]
    fn kernel_executes_points() {
        let src = "fn main() {
            forall i in 0..4 {
              forall j in 0..3 {
                y[i * 3 + j] = x[i * 3 + j] * 2 + i;
              }
            }
          }";
        let x = SharedRegion::from_f64(&(0..12).map(|v| v as f64).collect::<Vec<_>>());
        let y = SharedRegion::new(12);
        let l = lower_src(
            src,
            &[("x", Value::Arr(x.clone())), ("y", Value::Arr(y.clone()))],
        )
        .unwrap();
        for i in 0..4 {
            for j in 0..3 {
                l.kernel.execute(&[i, j]).unwrap();
            }
        }
        for v in 0..12 {
            assert_eq!(y.read_f64(v), (v as f64) * 2.0 + (v / 3) as f64);
        }
    }

    #[test]
    fn kernel_reports_out_of_bounds() {
        let src = "fn main() {
            forall i in 0..10 { a[i + 3] = 1; }
          }";
        let l = lower_src(src, &[("a", arr(8))]).unwrap();
        assert!(l.kernel.execute(&[2]).is_ok());
        let err = l.kernel.execute(&[7]).unwrap_err();
        assert!(err.contains("out of bounds"), "{err}");
    }

    #[test]
    fn non_affine_and_unsupported_forms_bail() {
        let a8 = || ("a", arr(8));
        // Index quadratic in the induction variable.
        assert!(matches!(
            lower_src("fn main() { forall i in 0..4 { a[i * i] = 1; } }", &[a8()]),
            Err(LowerBail::NonAffineIndex(_))
        ));
        // Print has side effects.
        assert!(matches!(
            lower_src("fn main() { forall i in 0..4 { print(i); } }", &[]),
            Err(LowerBail::UnsupportedStmt(_))
        ));
        // Triangular bound.
        assert!(matches!(
            lower_src(
                "fn main() { forall i in 0..4 { forall j in 0..i { a[j] = 1; } } }",
                &[a8()]
            ),
            Err(LowerBail::NonConstBound(_))
        ));
        // Transposed (non-uniform) read of a written array.
        assert!(matches!(
            lower_src(
                "fn main() { forall i in 0..2 { forall j in 0..2 {
                    a[i * 2 + j] = a[j * 2 + i];
                 } } }",
                &[a8()]
            ),
            Err(LowerBail::NonUniformAccess(_))
        ));
        // Empty range.
        assert!(matches!(
            lower_src("fn main() { forall i in 4..4 { a[i] = 1; } }", &[a8()]),
            Err(LowerBail::EmptyLevel(_))
        ));
    }

    #[test]
    fn symmetric_digit_range_yields_multiple_dependences() {
        // a[i*4+j] vs a[i*4+j+2] over j in 0..4: Δ = 2 is realized both as
        // (0, 2) and as (1, −2) — the analysis must emit both, not pick
        // one arbitrarily.
        let src = "fn main() {
            forall i in 0..6 {
              forall j in 0..4 {
                a[i * 4 + j] = a[i * 4 + j + 2] + 1;
              }
            }
          }";
        let l = lower_src(src, &[("a", arr(32))]).unwrap();
        let carried: Vec<&Dep> = l
            .nest
            .deps
            .iter()
            .filter(|d| d.distance.iter().any(|&x| x != 0))
            .collect();
        assert!(
            carried.iter().any(|d| d.distance == vec![0, 2]),
            "missing the (0,2) solution: {carried:?}"
        );
        assert!(
            carried.iter().any(|d| d.distance == vec![1, -2]),
            "missing the (1,-2) solution: {carried:?}"
        );
    }

    #[test]
    fn aliased_arrays_share_an_entry() {
        let region = SharedRegion::new(16);
        let src = "fn main() { forall i in 0..8 { a[i] = b[i + 8]; } }";
        let l = lower_src(
            src,
            &[
                ("a", Value::Arr(region.clone())),
                ("b", Value::Arr(region.clone())),
            ],
        )
        .unwrap();
        assert_eq!(l.kernel.arrays.len(), 1, "aliases must unify");
    }

    #[test]
    fn read_only_nest_bails() {
        let src = "fn main() { forall i in 0..8 { let x = a[i]; } }";
        assert!(matches!(
            lower_src(src, &[("a", arr(8))]),
            Err(LowerBail::UnsupportedStmt(_))
        ));
    }
}
