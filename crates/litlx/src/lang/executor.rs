//! Pluggable `forall` execution strategies.
//!
//! The interpreter no longer hardwires a loop path: every non-profiled
//! `forall` goes through `run_forall`, which picks between two
//! `LoopExecutor` strategies:
//!
//! * `NaiveExecutor` — the historical flat fan-out: helper SGTs claim
//!   chunks from an atomic cursor under a hint-selected schedule
//!   (`static` / `chunk` / `guided`), the calling thread helping.
//! * `SspExecutor` — the §3.3 pipeline: lower the nest to
//!   `htvm_ssp::ir::LoopNest` ([`super::lower`]), schedule every level,
//!   pick one, partition it into thread groups, and run the groups on the
//!   native pool with domain placement and a `SyncSlot` wavefront
//!   (`htvm_ssp::exec`). Anything the lowering cannot prove affine bails
//!   back to the naive path.
//!
//! The choice is the adaptive loop of §4.1: `@hint(pipeline)` pragmas are
//! written into the knowledge base and force the path; recorded outcomes
//! (wall time per path, fed back after every loop) decide when both have
//! been measured; a static heuristic covers cold starts. The session
//! [`LoopStrategy`] caps how adventurous the interpreter may be.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm_adapt::pipeline::{self, ExecPathTaken, LoopPath, LoopShape};
use htvm_ssp::exec::{plan_native, run_partitioned_body, NestBody, PointBody, RunBody};
use htvm_ssp::partition::PartitionPlan;
use htvm_ssp::ssp::{schedule_all_levels, SspConfig};

use super::ast::{Hint, Stmt};
use super::compile::compile;
use super::interp::{Env, Scope, Value};
use super::lower::lower_forall;

/// How the interpreter executes `forall` loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopStrategy {
    /// Always the naive flat SGT fan-out. `@hint(pipeline)` pragmas (and
    /// knowledge-base entries) still force the SSP path per loop.
    #[default]
    Naive,
    /// Attempt SSP lowering on every `forall`, falling back to naive on
    /// bail-out. `@hint(pipeline = 0)` still forces naive per loop.
    Ssp,
    /// Let `htvm_adapt::pipeline` decide per loop from hints, recorded
    /// outcomes, and shape.
    Adaptive,
}

/// How SSP loop bodies execute once a nest has taken the pipelined path.
///
/// Both modes produce bit-identical program output (see
/// [`mod@super::compile`]'s exactness argument); the compiled mode exists to
/// remove per-point interpreter overhead, the interpreted mode to measure
/// it and to differentially test the compiler against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Point-at-a-time register-tape interpretation
    /// ([`super::lower::Kernel::execute`]).
    Interpreted,
    /// Run-at-a-time execution of the optimized tape
    /// ([`super::compile::compile`]): constant folding, dead-register
    /// elimination, strength-reduced per-level strides, hoisted bounds
    /// proofs, and monomorphized native closures for common body shapes.
    #[default]
    Compiled,
}

/// Everything one `forall` execution needs (bounds already evaluated).
pub(crate) struct ForallSpec<'a> {
    pub(crate) var: &'a str,
    pub(crate) from: i64,
    pub(crate) to: i64,
    pub(crate) body: &'a [Stmt],
    pub(crate) hints: &'a [Hint],
    pub(crate) env: &'a Env,
}

/// A loop-execution strategy. `run` reports which path actually executed
/// (the SSP strategy may fall back to naive on a lowering bail-out, and
/// reports whether its kernel ran compiled or interpreted).
pub(crate) trait LoopExecutor {
    fn run(&self, scope: &Scope<'_>, spec: &ForallSpec<'_>) -> Result<ExecPathTaken, String>;
}

/// Entry point: pick a path for this loop, execute it, record the outcome.
pub(crate) fn run_forall(scope: &Scope<'_>, spec: &ForallSpec<'_>) -> Result<(), String> {
    let n = (spec.to - spec.from).max(0) as u64;
    if n == 0 {
        return Ok(());
    }
    let ex = &scope.shared.exec;
    // A program point stable across executions *and* processes: the
    // induction variable plus a structural fingerprint of the body, so
    // two different loops sharing a variable name cannot exchange hints
    // or recorded outcomes in the knowledge base.
    let point = format!("{}@{:012x}", spec.var, fnv1a(&format!("{:?}", spec.body)));
    // Lower `@hint(pipeline …)` pragmas into the knowledge base (once per
    // point) so the policy — and future runs via the persisted database —
    // sees them as §4.1 structured hints.
    if let Some(kv) = pipeline_pragma(spec.hints) {
        let mut kb = ex.kb.lock();
        if !kb
            .hints_at(&point)
            .iter()
            .any(|h| h.get("pipeline").is_some())
        {
            kb.add_hint(&point, pipeline::pipeline_hint(kv, 100));
        }
    }
    let shape = estimate_shape(scope, spec, n);
    let decision = pipeline::decide_loop_path(&ex.kb.lock(), &point, shape);
    use htvm_adapt::pipeline::DecisionReason;
    let path = match ex.strategy {
        // Session strategy caps the default; a hint always wins.
        _ if decision.reason == DecisionReason::Hint => decision.path,
        LoopStrategy::Naive => LoopPath::Naive,
        LoopStrategy::Ssp => LoopPath::Pipelined,
        LoopStrategy::Adaptive => decision.path,
    };
    let start = std::time::Instant::now();
    let ssp = SspExecutor {
        level: decision.level,
        chunk: decision.chunk,
    };
    let executor: &dyn LoopExecutor = match path {
        LoopPath::Pipelined => &ssp,
        LoopPath::Naive => &NaiveExecutor,
    };
    let ran = executor.run(scope, spec)?;
    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    pipeline::record_exec_outcome(&mut ex.kb.lock(), &point, ran, nanos.max(1));
    Ok(())
}

/// FNV-1a over a string — deterministic across processes (unlike the std
/// hasher), so knowledge persisted by one run keys correctly in the next.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h & 0xffff_ffff_ffff
}

/// The `pipeline`-related key/values of a pragma list, if any.
fn pipeline_pragma(hints: &[Hint]) -> Option<Vec<(String, String)>> {
    let h = hints.iter().find(|h| h.get_num("pipeline").is_some())?;
    let mut kv = Vec::new();
    for key in ["pipeline", "level", "chunk"] {
        if let Some(v) = h.get_num(key) {
            kv.push((key.to_string(), format!("{}", v as i64)));
        }
    }
    Some(kv)
}

/// Syntactic shape estimate: depth of the single-statement loop spine and
/// total points. Bounds are *const-folded*, never evaluated through the
/// interpreter — a bound calling a user function must not have its side
/// effects run an extra time just to estimate a shape. Unfoldable bounds
/// assume the outer trip count.
fn estimate_shape(scope: &Scope<'_>, spec: &ForallSpec<'_>, n: u64) -> LoopShape {
    let mut depth = 1usize;
    let mut points = n;
    let mut cur = spec.body;
    loop {
        let (from, to, body) = match cur {
            [Stmt::Forall { from, to, body, .. }] => (from, to, body),
            [Stmt::For(_, from, to, body)] => (from, to, body),
            _ => break,
        };
        let level_n = match (const_fold(from, spec.env), const_fold(to, spec.env)) {
            (Some(a), Some(b)) => ((b as i64) - (a as i64)).max(0) as u64,
            // Bound depends on an induction variable or a call: assume
            // the outer trip count.
            _ => n,
        };
        depth += 1;
        points = points.saturating_mul(level_n.max(1));
        cur = body;
    }
    LoopShape {
        depth,
        points,
        workers: scope.shared.workers,
    }
}

/// Pure constant folding over the environment: numbers, env-bound
/// numeric variables, arithmetic, negation. Anything else (calls,
/// indexing, induction variables not yet bound) is `None`.
fn const_fold(e: &super::ast::Expr, env: &Env) -> Option<f64> {
    use super::ast::{BinOp, Expr};
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Var(v) => match env.get(v) {
            Some(Value::Num(n)) => Some(n),
            _ => None,
        },
        Expr::Neg(x) => Some(-const_fold(x, env)?),
        Expr::Bin(op, l, r) => {
            let (a, b) = (const_fold(l, env)?, const_fold(r, env)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => Some(a / b),
                BinOp::Rem => Some(a % b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// The historical flat fan-out: helpers steal chunks from an atomic
/// cursor; the caller participates, so loops finish on a single worker.
pub(crate) struct NaiveExecutor;

impl LoopExecutor for NaiveExecutor {
    fn run(&self, scope: &Scope<'_>, spec: &ForallSpec<'_>) -> Result<ExecPathTaken, String> {
        let n = (spec.to - spec.from).max(0) as u64;
        let from = spec.from;
        let workers = scope.shared.workers as u64;
        let schedule = spec
            .hints
            .iter()
            .find_map(|h| h.get_str("schedule").map(str::to_string))
            .unwrap_or_else(|| "static".to_string());
        let fixed_chunk = spec
            .hints
            .iter()
            .find_map(|h| h.get_num("chunk"))
            .map(|c| c as u64);

        let next = Arc::new(AtomicU64::new(0));
        let done = Arc::new(htvm_core::sync::EventCount::new());

        let claim =
            move |next: &AtomicU64, schedule: &str, chunk: Option<u64>| -> Option<(u64, u64)> {
                let static_chunk = n.div_ceil(workers).max(1);
                loop {
                    let cur = next.load(Ordering::Acquire);
                    if cur >= n {
                        return None;
                    }
                    let size = match schedule {
                        "guided" => ((n - cur) / workers).max(1),
                        "chunk" => chunk.unwrap_or(1).max(1),
                        _ => static_chunk,
                    };
                    let end = (cur + size).min(n);
                    if next
                        .compare_exchange(cur, end, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return Some((cur, end));
                    }
                }
            };

        // Helpers: workers-1 SGTs; the caller participates too.
        let helpers = workers.saturating_sub(1);
        for _ in 0..helpers {
            let env = spec.env.clone();
            let body = spec.body.to_vec();
            let var = spec.var.to_string();
            let next = next.clone();
            let done = done.clone();
            let schedule = schedule.clone();
            scope.spawn_sgt(move |scope| {
                while let Some((lo, hi)) = claim(&next, &schedule, fixed_chunk) {
                    for i in lo..hi {
                        let e = env.child();
                        e.define(&var, Value::Num((from + i as i64) as f64));
                        if let Err(err) = scope.exec_block(&body, &e) {
                            scope.shared.fail(err);
                        }
                    }
                    done.add(hi - lo);
                }
            });
        }
        while let Some((lo, hi)) = claim(&next, &schedule, fixed_chunk) {
            for i in lo..hi {
                let e = spec.env.child();
                e.define(spec.var, Value::Num((from + i as i64) as f64));
                if scope.exec_block_returns(spec.body, &e)? {
                    return Err("`return` inside forall is not allowed".to_string());
                }
            }
            done.add(hi - lo);
        }
        done.wait_for(n);
        Ok(ExecPathTaken::Naive)
    }
}

/// The §3.3 pipeline: lower → schedule → partition → wavefront-execute.
pub(crate) struct SspExecutor {
    /// Forced pipelined level (from a hint), if any.
    pub(crate) level: Option<usize>,
    /// Forced group size in level-iterations (from a hint), if any.
    pub(crate) chunk: Option<u64>,
}

impl SspExecutor {
    /// Returns `Ok(None)` if the nest cannot take the SSP path (lowering
    /// bail, unschedulable levels, forced level invalid) — the caller
    /// falls back to naive. Runtime errors (out-of-bounds stores) are
    /// real errors. The interpreter thread is the *helping caller* of
    /// `run_partitioned_body` — it claims ready groups itself — and that
    /// call is panic-safe: a group that unwinds (kernel bug, poisoned
    /// region, a compiled run asked for points outside the iteration box)
    /// comes back as this function's `Err` instead of wedging the help
    /// loop or unwinding through the interpreter.
    ///
    /// Under [`KernelMode::Compiled`] the lowered tape is optimized by
    /// [`super::compile::compile`] and the groups execute run-at-a-time
    /// ([`NestBody::Run`]); under [`KernelMode::Interpreted`] they execute
    /// point-at-a-time on the raw tape. The `Ok(Some(path))` value reports
    /// which, for the knowledge base.
    fn try_run(
        &self,
        scope: &Scope<'_>,
        spec: &ForallSpec<'_>,
    ) -> Result<Option<ExecPathTaken>, String> {
        let env = spec.env;
        let resolve = |name: &str| env.get(name);
        let Ok(lowered) = lower_forall(spec.var, spec.from, spec.to, spec.body, &resolve) else {
            return Ok(None);
        };
        let ex = &scope.shared.exec;
        let workers = scope.shared.workers as u64;
        let plans = schedule_all_levels(&lowered.nest, &SspConfig::default());
        let allowed: Vec<usize> = match self.level {
            Some(l) if lowered.parallel_levels.contains(&l) => vec![l],
            Some(_) => return Ok(None), // forced level is not a forall level
            None => lowered.parallel_levels.clone(),
        };
        let Some(mut plan) = plan_native(&lowered.nest.trip_counts, &plans, &allowed, workers)
        else {
            return Ok(None);
        };
        if let Some(chunk) = self.chunk {
            let n_l = lowered.nest.trip_counts[plan.level_plan.level];
            let threads = n_l.div_ceil(chunk.max(1));
            plan.partition = PartitionPlan::new(&plan.level_plan, n_l, threads);
        }
        let (body, taken) = match ex.kernel_mode {
            KernelMode::Compiled => {
                let compiled = Arc::new(compile(&lowered.kernel, &lowered.nest.trip_counts));
                let run: Arc<RunBody> = Arc::new(move |prefix, t0, t1| {
                    compiled
                        .execute_run(prefix, t0, t1)
                        .map_err(|f| f.to_string())
                });
                (NestBody::Run(run), ExecPathTaken::SspCompiled)
            }
            KernelMode::Interpreted => {
                let kernel = Arc::new(lowered.kernel);
                let point: Arc<PointBody> = Arc::new(move |idx| kernel.execute(idx));
                (NestBody::Point(point), ExecPathTaken::SspInterp)
            }
        };
        let report = run_partitioned_body(
            &ex.pool,
            &lowered.nest.trip_counts,
            plan.level_plan.level,
            0, // the kernel translates 0-based indices via its own bounds
            &plan.partition,
            body,
        )?;
        scope
            .shared
            .sgt_spawns
            .fetch_add(report.spawned, Ordering::Relaxed);
        ex.ssp_foralls.fetch_add(1, Ordering::Relaxed);
        if report.wavefront {
            ex.ssp_wavefronts.fetch_add(1, Ordering::Relaxed);
        }
        if taken == ExecPathTaken::SspCompiled {
            ex.ssp_compiled.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Some(taken))
    }
}

impl LoopExecutor for SspExecutor {
    fn run(&self, scope: &Scope<'_>, spec: &ForallSpec<'_>) -> Result<ExecPathTaken, String> {
        if let Some(taken) = self.try_run(scope, spec)? {
            Ok(taken)
        } else {
            scope
                .shared
                .exec
                .ssp_bailouts
                .fetch_add(1, Ordering::Relaxed);
            NaiveExecutor.run(scope, spec)
        }
    }
}
