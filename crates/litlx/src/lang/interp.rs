//! The LITL-X interpreter: executes programs on the native HTVM runtime.
//!
//! Mapping of language constructs onto the execution model:
//!
//! * a program run is one **LGT** ([`htvm_core::Htvm::lgt`]);
//! * `forall` bodies and `spawn` blocks become **SGTs** — the spawning
//!   thread participates in its own loop (helping), so loops finish even on
//!   a single worker;
//! * `future`/`force` lower onto [`crate::future::LitlFuture`];
//! * `atomic { … }` blocks serialize through the interpreter's atomic
//!   domain;
//! * `@hint` pragmas choose the `forall` schedule (`static`, `chunk`,
//!   `guided`) — the language-level face of the paper's loop-parallelism
//!   adaptation.
//!
//! Shared-variable semantics inside `forall` follow the usual parallel-loop
//! rule: arrays are shared (element writes race only if the program makes
//! them race), scalars assigned inside an iteration are last-writer-wins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm_core::{Htvm, HtvmConfig, SharedRegion};
use parking_lot::Mutex;

use super::ast::{BinOp, Expr, FnDef, Hint, Program, Stmt};
use super::profile::{ForallProfile, ProfileState};
use crate::future::LitlFuture;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// A number (LITL-X is f64-only, like the pseudo-code of Fig. 3).
    Num(f64),
    /// An array of f64, aliased across scopes and threads.
    Arr(SharedRegion),
    /// An unresolved or resolved future of a number.
    Fut(LitlFuture<f64>),
    /// No value.
    Unit,
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Num(n) => write!(f, "Num({n})"),
            Value::Arr(a) => write!(f, "Arr(len={})", a.len()),
            Value::Fut(x) => write!(f, "Fut(resolved={})", x.is_resolved()),
            Value::Unit => write!(f, "Unit"),
        }
    }
}

impl Value {
    fn as_num(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Num(n) => Ok(*n),
            Value::Fut(_) => Err(format!("{what}: got an unforced future; apply force(…)")),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<SharedRegion, String> {
        match self {
            Value::Arr(a) => Ok(a.clone()),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn truthy(&self) -> bool {
        matches!(self, Value::Num(n) if *n != 0.0)
    }
}

/// Lexical environment: a chain of shared frames. Cloning shares frames
/// (child scopes see parent bindings; parallel bodies snapshot the chain).
#[derive(Clone, Default)]
struct Env {
    frames: Vec<Arc<Mutex<HashMap<String, Value>>>>,
}

impl Env {
    fn child(&self) -> Env {
        let mut e = self.clone();
        e.frames.push(Arc::new(Mutex::new(HashMap::new())));
        e
    }

    fn define(&self, name: &str, v: Value) {
        self.frames
            .last()
            .expect("env has a frame")
            .lock()
            .insert(name.to_string(), v);
    }

    fn get(&self, name: &str) -> Option<Value> {
        for f in self.frames.iter().rev() {
            if let Some(v) = f.lock().get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign(&self, name: &str, v: Value) -> bool {
        for f in self.frames.iter().rev() {
            let mut g = f.lock();
            if let Some(slot) = g.get_mut(name) {
                *slot = v;
                return true;
            }
        }
        false
    }
}

/// Shared interpreter state across all threads of one run.
struct Shared {
    program: Program,
    printed: Mutex<Vec<String>>,
    error: Mutex<Option<String>>,
    atomic_gate: Mutex<()>,
    sgt_spawns: AtomicU64,
    workers: usize,
    /// When set, the run is a sequential *profiled* run: every AST node
    /// evaluated bumps the meter, `forall` records per-iteration costs,
    /// and `spawn`/`future` execute inline (see `lang::profile`).
    profile: Option<Arc<ProfileState>>,
}

impl Shared {
    fn fail(&self, msg: String) {
        let mut e = self.error.lock();
        if e.is_none() {
            *e = Some(msg);
        }
    }
}

/// Result of a program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Lines produced by `print(...)`, in program order per thread
    /// (cross-thread order is scheduling-dependent).
    pub printed: Vec<String>,
    /// Number of SGTs the run spawned (forall chunks, spawn blocks,
    /// futures).
    pub sgt_spawns: u64,
}

/// The LITL-X interpreter.
pub struct Interp {
    htvm: Htvm,
    workers: usize,
}

enum Flow {
    Normal,
    Return(Value),
}

impl Interp {
    /// An interpreter over a fresh HTVM runtime with `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            htvm: Htvm::new(HtvmConfig::with_workers(workers)),
            workers: workers.max(1),
        }
    }

    /// Run `main` (no arguments). Returns printed output or the first
    /// runtime error.
    pub fn run(&self, program: &Program) -> Result<RunOutput, String> {
        self.run_inner(program, None).map(|(out, _)| out)
    }

    /// Run `main` sequentially under the instruction meter, recording the
    /// per-iteration cost vector of every `forall` (§4.2's monitor feeding
    /// §3.3's continuous compilation). Output is identical to [`Interp::run`]
    /// for deterministic programs.
    pub fn profile(&self, program: &Program) -> Result<(RunOutput, Vec<ForallProfile>), String> {
        let state = Arc::new(ProfileState::new());
        let (out, st) = self.run_inner(program, Some(state))?;
        let profiles = st.expect("profile state present").foralls.lock().clone();
        Ok((out, profiles))
    }

    fn run_inner(
        &self,
        program: &Program,
        profile: Option<Arc<ProfileState>>,
    ) -> Result<(RunOutput, Option<Arc<ProfileState>>), String> {
        if program.get_fn("main").is_none() {
            return Err("program has no `main` function".to_string());
        }
        let shared = Arc::new(Shared {
            program: program.clone(),
            printed: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            atomic_gate: Mutex::new(()),
            sgt_spawns: AtomicU64::new(0),
            workers: self.workers,
            profile,
        });
        let sh = shared.clone();
        let handle = self.htvm.lgt(move |lgt| {
            let main = sh.program.get_fn("main").expect("checked above").clone();
            let scope = Scope {
                shared: sh.clone(),
                spawner: lgt,
            };
            if let Err(e) = scope.call_fn(&main, Vec::new()) {
                sh.fail(e);
            }
        });
        handle.join();
        let err = shared.error.lock().clone();
        if let Some(e) = err {
            return Err(e);
        }
        let printed = shared.printed.lock().clone();
        let out = RunOutput {
            printed,
            sgt_spawns: shared.sgt_spawns.load(Ordering::Relaxed),
        };
        Ok((out, shared.profile.clone()))
    }
}

/// A boxed interpreter job: runs with the spawn capability of the SGT that
/// executes it, so nested spawns never need `'static` contexts.
type SpawnJob = Box<dyn FnOnce(&dyn Spawn) + Send>;

/// Spawn capability — implemented by both LGT and SGT contexts, so the
/// statement walker is agnostic about which level it runs at.
trait Spawn {
    fn spawn_job(&self, job: SpawnJob);
}

impl Spawn for htvm_core::LgtCtx<'_> {
    fn spawn_job(&self, job: SpawnJob) {
        self.spawn_sgt(move |sgt| job(sgt));
    }
}

impl Spawn for htvm_core::SgtCtx<'_> {
    fn spawn_job(&self, job: SpawnJob) {
        self.spawn_sgt(move |sgt| job(sgt));
    }
}

/// An execution scope: shared state + spawn capability of the current
/// thread level.
struct Scope<'a> {
    shared: Arc<Shared>,
    spawner: &'a dyn Spawn,
}

impl Scope<'_> {
    fn spawn_sgt(&self, job: impl FnOnce(&Scope<'_>) + Send + 'static) {
        self.shared.sgt_spawns.fetch_add(1, Ordering::Relaxed);
        let shared = self.shared.clone();
        self.spawner.spawn_job(Box::new(move |sp: &dyn Spawn| {
            let scope = Scope { shared, spawner: sp };
            job(&scope);
        }));
    }

    fn call_fn(&self, f: &Arc<FnDef>, args: Vec<Value>) -> Result<Value, String> {
        if args.len() != f.params.len() {
            return Err(format!(
                "{}: expected {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            ));
        }
        let env = Env::default().child();
        for (p, a) in f.params.iter().zip(args) {
            env.define(p, a);
        }
        match self.exec_block(&f.body, &env)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Unit),
        }
    }

    fn exec_block(&self, stmts: &[Stmt], env: &Env) -> Result<Flow, String> {
        for s in stmts {
            if let Flow::Return(v) = self.exec_stmt(s, env)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&self, stmt: &Stmt, env: &Env) -> Result<Flow, String> {
        match stmt {
            Stmt::Let(name, e) => {
                let v = self.eval(e, env)?;
                env.define(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(name, e) => {
                let v = self.eval(e, env)?;
                if !env.assign(name, v) {
                    return Err(format!("assignment to undefined variable `{name}`"));
                }
                Ok(Flow::Normal)
            }
            Stmt::StoreIndex {
                array,
                index,
                value,
                accumulate,
            } => {
                let arr = env
                    .get(array)
                    .ok_or_else(|| format!("undefined array `{array}`"))?
                    .as_arr("indexed store")?;
                let i = self.eval(index, env)?.as_num("array index")? as usize;
                if i >= arr.len() {
                    return Err(format!(
                        "index {i} out of bounds for array of length {}",
                        arr.len()
                    ));
                }
                let v = self.eval(value, env)?.as_num("stored value")?;
                if let Some(p) = &self.shared.profile {
                    p.stores.fetch_add(1, Ordering::Relaxed);
                }
                if *accumulate {
                    arr.fetch_add_f64(i, v);
                } else {
                    arr.write_f64(i, v);
                }
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond, env)?.truthy() {
                    self.exec_block(then, &env.child())
                } else {
                    self.exec_block(els, &env.child())
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env)?.truthy() {
                    if let Flow::Return(v) = self.exec_block(body, &env.child())? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(var, from, to, body) => {
                let a = self.eval(from, env)?.as_num("for start")? as i64;
                let b = self.eval(to, env)?.as_num("for end")? as i64;
                for i in a..b {
                    let e = env.child();
                    e.define(var, Value::Num(i as f64));
                    if let Flow::Return(v) = self.exec_block(body, &e)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Forall {
                var,
                from,
                to,
                body,
                hints,
            } => {
                let a = self.eval(from, env)?.as_num("forall start")? as i64;
                let b = self.eval(to, env)?.as_num("forall end")? as i64;
                self.run_forall(var, a, b, body, hints, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Spawn(body) => {
                if self.shared.profile.is_some() {
                    // Profiled runs are sequential: execute inline.
                    self.exec_block(body, &env.child())?;
                    return Ok(Flow::Normal);
                }
                let env = env.clone();
                let body = body.to_vec();
                self.spawn_sgt(move |scope| {
                    if let Err(e) = scope.exec_block(&body, &env.child()) {
                        scope.shared.fail(e);
                    }
                });
                Ok(Flow::Normal)
            }
            Stmt::Future(name, e) => {
                let fut: LitlFuture<f64> = LitlFuture::unresolved();
                env.define(name, Value::Fut(fut.clone()));
                if self.shared.profile.is_some() {
                    // Profiled runs resolve futures eagerly, inline.
                    let n = self.eval(e, env)?.as_num("future value")?;
                    fut.resolve(n);
                    return Ok(Flow::Normal);
                }
                let env2 = env.clone();
                let e = e.clone();
                self.spawn_sgt(move |scope| match scope.eval(&e, &env2) {
                    Ok(v) => match v.as_num("future value") {
                        Ok(n) => fut.resolve(n),
                        Err(err) => {
                            scope.shared.fail(err);
                            fut.resolve(f64::NAN);
                        }
                    },
                    Err(err) => {
                        scope.shared.fail(err);
                        fut.resolve(f64::NAN);
                    }
                });
                Ok(Flow::Normal)
            }
            Stmt::Atomic(body) => {
                let _gate = self.shared.atomic_gate.lock();
                self.exec_block(body, &env.child())
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Parallel loop with hint-selected schedule. The calling thread helps,
    /// so the loop completes even with zero free workers.
    fn run_forall(
        &self,
        var: &str,
        from: i64,
        to: i64,
        body: &[Stmt],
        hints: &[Hint],
        env: &Env,
    ) -> Result<(), String> {
        let n = (to - from).max(0) as u64;
        if let Some(p) = self.shared.profile.clone() {
            // Profiled run: sequential, metering each iteration.
            let mut costs = Vec::with_capacity(n as usize);
            for i in 0..n {
                let before = p.ops_now();
                let e = env.child();
                e.define(var, Value::Num((from + i as i64) as f64));
                self.exec_block(body, &e)?;
                costs.push(p.ops_now() - before);
            }
            p.foralls.lock().push(ForallProfile {
                var: var.to_string(),
                costs,
            });
            return Ok(());
        }
        if n == 0 {
            return Ok(());
        }
        let workers = self.shared.workers as u64;
        let schedule = hints
            .iter()
            .find_map(|h| h.get_str("schedule").map(str::to_string))
            .unwrap_or_else(|| "static".to_string());
        let fixed_chunk = hints.iter().find_map(|h| h.get_num("chunk")).map(|c| c as u64);

        let next = Arc::new(AtomicU64::new(0));
        let done = Arc::new(htvm_core::sync::EventCount::new());

        let claim = move |next: &AtomicU64, schedule: &str, chunk: Option<u64>| -> Option<(u64, u64)> {
            let static_chunk = n.div_ceil(workers).max(1);
            loop {
                let cur = next.load(Ordering::Acquire);
                if cur >= n {
                    return None;
                }
                let size = match schedule {
                    "guided" => ((n - cur) / workers).max(1),
                    "chunk" => chunk.unwrap_or(1).max(1),
                    _ => static_chunk,
                };
                let end = (cur + size).min(n);
                if next
                    .compare_exchange(cur, end, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return Some((cur, end));
                }
            }
        };

        // Helpers: workers-1 SGTs; the caller participates too.
        let helpers = workers.saturating_sub(1);
        for _ in 0..helpers {
            let env = env.clone();
            let body = body.to_vec();
            let var = var.to_string();
            let next = next.clone();
            let done = done.clone();
            let schedule = schedule.clone();
            self.spawn_sgt(move |scope| {
                while let Some((lo, hi)) = claim(&next, &schedule, fixed_chunk) {
                    for i in lo..hi {
                        let e = env.child();
                        e.define(&var, Value::Num((from + i as i64) as f64));
                        if let Err(err) = scope.exec_block(&body, &e) {
                            scope.shared.fail(err);
                        }
                    }
                    done.add(hi - lo);
                }
            });
        }
        while let Some((lo, hi)) = claim(&next, &schedule, fixed_chunk) {
            for i in lo..hi {
                let e = env.child();
                e.define(var, Value::Num((from + i as i64) as f64));
                if let Flow::Return(_) = self.exec_block(body, &e)? {
                    return Err("`return` inside forall is not allowed".to_string());
                }
            }
            done.add(hi - lo);
        }
        done.wait_for(n);
        Ok(())
    }

    fn eval(&self, e: &Expr, env: &Env) -> Result<Value, String> {
        if let Some(p) = &self.shared.profile {
            p.ops.fetch_add(1, Ordering::Relaxed);
        }
        match e {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Var(name) => env
                .get(name)
                .ok_or_else(|| format!("undefined variable `{name}`")),
            Expr::Index(arr, idx) => {
                let a = self.eval(arr, env)?.as_arr("indexing")?;
                let i = self.eval(idx, env)?.as_num("array index")? as usize;
                if i >= a.len() {
                    return Err(format!(
                        "index {i} out of bounds for array of length {}",
                        a.len()
                    ));
                }
                if let Some(p) = &self.shared.profile {
                    p.loads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Value::Num(a.read_f64(i)))
            }
            Expr::Neg(x) => Ok(Value::Num(-self.eval(x, env)?.as_num("negation")?)),
            Expr::Not(x) => Ok(Value::Num(if self.eval(x, env)?.truthy() { 0.0 } else { 1.0 })),
            Expr::Bin(op, l, r) => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    return Ok(Value::Num(
                        if self.eval(l, env)?.truthy() && self.eval(r, env)?.truthy() {
                            1.0
                        } else {
                            0.0
                        },
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Num(
                        if self.eval(l, env)?.truthy() || self.eval(r, env)?.truthy() {
                            1.0
                        } else {
                            0.0
                        },
                    ));
                }
                let a = self.eval(l, env)?.as_num("left operand")?;
                let b = self.eval(r, env)?.as_num("right operand")?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    BinOp::Eq => (a == b) as i64 as f64,
                    BinOp::Ne => (a != b) as i64 as f64,
                    BinOp::Lt => (a < b) as i64 as f64,
                    BinOp::Le => (a <= b) as i64 as f64,
                    BinOp::Gt => (a > b) as i64 as f64,
                    BinOp::Ge => (a >= b) as i64 as f64,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(Value::Num(v))
            }
            Expr::Call(name, args) => self.call(name, args, env),
        }
    }

    fn call(&self, name: &str, args: &[Expr], env: &Env) -> Result<Value, String> {
        // User functions shadow builtins.
        if let Some(f) = self.shared.program.get_fn(name) {
            let f = f.clone();
            let vals = args
                .iter()
                .map(|a| self.eval(a, env))
                .collect::<Result<Vec<_>, _>>()?;
            return self.call_fn(&f, vals);
        }
        let num = |i: usize| -> Result<f64, String> {
            self.eval(&args[i], env)?.as_num(&format!("{name} argument {i}"))
        };
        let need = |k: usize| -> Result<(), String> {
            if args.len() == k {
                Ok(())
            } else {
                Err(format!("{name}: expected {k} arguments, got {}", args.len()))
            }
        };
        match name {
            "array" => {
                need(1)?;
                let n = num(0)? as usize;
                Ok(Value::Arr(SharedRegion::new(n)))
            }
            "len" => {
                need(1)?;
                let a = self.eval(&args[0], env)?.as_arr("len")?;
                Ok(Value::Num(a.len() as f64))
            }
            "sum" => {
                need(1)?;
                let a = self.eval(&args[0], env)?.as_arr("sum")?;
                Ok(Value::Num((0..a.len()).map(|i| a.read_f64(i)).sum()))
            }
            "force" => {
                need(1)?;
                match self.eval(&args[0], env)? {
                    Value::Fut(f) => Ok(Value::Num(f.force())),
                    v => Ok(v),
                }
            }
            "sqrt" => {
                need(1)?;
                Ok(Value::Num(num(0)?.sqrt()))
            }
            "abs" => {
                need(1)?;
                Ok(Value::Num(num(0)?.abs()))
            }
            "exp" => {
                need(1)?;
                Ok(Value::Num(num(0)?.exp()))
            }
            "log" => {
                need(1)?;
                Ok(Value::Num(num(0)?.ln()))
            }
            "sin" => {
                need(1)?;
                Ok(Value::Num(num(0)?.sin()))
            }
            "cos" => {
                need(1)?;
                Ok(Value::Num(num(0)?.cos()))
            }
            "floor" => {
                need(1)?;
                Ok(Value::Num(num(0)?.floor()))
            }
            "pow" => {
                need(2)?;
                Ok(Value::Num(num(0)?.powf(num(1)?)))
            }
            "min" => {
                need(2)?;
                Ok(Value::Num(num(0)?.min(num(1)?)))
            }
            "max" => {
                need(2)?;
                Ok(Value::Num(num(0)?.max(num(1)?)))
            }
            "workers" => {
                need(0)?;
                Ok(Value::Num(self.shared.workers as f64))
            }
            "print" => {
                need(1)?;
                let v = self.eval(&args[0], env)?;
                let s = match v {
                    Value::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                        format!("{}", n as i64)
                    }
                    Value::Num(n) => format!("{n}"),
                    Value::Arr(a) => format!("[array;{}]", a.len()),
                    Value::Fut(f) => format!("<future resolved={}>", f.is_resolved()),
                    Value::Unit => "()".to_string(),
                };
                self.shared.printed.lock().push(s);
                Ok(Value::Unit)
            }
            other => Err(format!("unknown function `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn run(src: &str) -> RunOutput {
        let p = parse(src).unwrap();
        Interp::new(4).run(&p).unwrap()
    }

    fn run_err(src: &str) -> String {
        let p = parse(src).unwrap();
        Interp::new(2).run(&p).unwrap_err()
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("fn main() { print(1 + 2 * 3 - 4 / 2); }");
        assert_eq!(out.printed, vec!["5"]);
    }

    #[test]
    fn recursion_factorial() {
        let out = run(
            "fn fact(n) { if n <= 1 { return 1; } return n * fact(n - 1); }
             fn main() { print(fact(10)); }",
        );
        assert_eq!(out.printed, vec!["3628800"]);
    }

    #[test]
    fn while_loop_and_assignment() {
        let out = run(
            "fn main() { let s = 0; let i = 0;
               while i < 10 { s = s + i; i = i + 1; }
               print(s); }",
        );
        assert_eq!(out.printed, vec!["45"]);
    }

    #[test]
    fn sequential_for() {
        let out = run(
            "fn main() { let a = array(5);
               for i in 0..5 { a[i] = i * i; }
               print(sum(a)); }",
        );
        assert_eq!(out.printed, vec!["30"]);
    }

    #[test]
    fn forall_fills_array_in_parallel() {
        let out = run(
            "fn main() { let n = 200; let a = array(n);
               forall i in 0..n { a[i] = i; }
               print(sum(a)); }",
        );
        assert_eq!(out.printed, vec!["19900"]);
        assert!(out.sgt_spawns > 0, "forall must spawn helper SGTs");
    }

    #[test]
    fn forall_guided_schedule() {
        let out = run(
            "fn main() { let n = 100; let a = array(n);
               @hint(schedule = \"guided\")
               forall i in 0..n { a[i] = 2 * i; }
               print(sum(a)); }",
        );
        assert_eq!(out.printed, vec!["9900"]);
    }

    #[test]
    fn forall_chunk_schedule() {
        let out = run(
            "fn main() { let n = 64; let a = array(n);
               @hint(schedule = \"chunk\", chunk = 4)
               forall i in 0..n { a[i] = 1; }
               print(sum(a)); }",
        );
        assert_eq!(out.printed, vec!["64"]);
    }

    #[test]
    fn forall_accumulate_is_atomic() {
        let out = run(
            "fn main() { let a = array(1);
               forall i in 0..1000 { a[0] += 1; }
               print(a[0]); }",
        );
        assert_eq!(out.printed, vec!["1000"]);
    }

    #[test]
    fn future_force_round_trip() {
        let out = run(
            "fn slow(x) { let s = 0; for i in 0..100 { s = s + x; } return s; }
             fn main() { future f = slow(3); print(force(f)); }",
        );
        assert_eq!(out.printed, vec!["300"]);
    }

    #[test]
    fn spawn_joined_before_exit() {
        let out = run(
            "fn main() { let a = array(1);
               spawn { a[0] = 42; }
             }",
        );
        // The LGT join guarantees the spawn ran; nothing printed, no error.
        assert_eq!(out.printed, Vec::<String>::new());
        assert!(out.sgt_spawns >= 1);
    }

    #[test]
    fn atomic_blocks_serialize_rmw() {
        let out = run(
            "fn main() { let a = array(1);
               forall i in 0..200 {
                 atomic { a[0] = a[0] + 1; }
               }
               print(a[0]); }",
        );
        assert_eq!(out.printed, vec!["200"]);
    }

    #[test]
    fn nested_forall_completes() {
        let out = run(
            "fn main() { let n = 8; let a = array(n * n);
               forall i in 0..n {
                 forall j in 0..n { a[i * n + j] = i + j; }
               }
               print(sum(a)); }",
        );
        assert_eq!(out.printed, vec!["448"]);
    }

    #[test]
    fn errors_propagate() {
        assert!(run_err("fn main() { print(undefined_var); }").contains("undefined"));
        assert!(run_err("fn main() { let a = array(2); a[5] = 1; }").contains("out of bounds"));
        assert!(run_err("fn main() { nope(1); }").contains("unknown function"));
        assert!(run_err("fn f(a, b) { return a; } fn main() { f(1); }").contains("arguments"));
    }

    #[test]
    fn error_inside_forall_surfaces() {
        let err = run_err(
            "fn main() { let a = array(4);
               forall i in 0..100 { a[i] = 1; } }",
        );
        assert!(err.contains("out of bounds"), "got: {err}");
    }

    #[test]
    fn builtins_cover_math() {
        let out = run(
            "fn main() {
               print(max(min(sqrt(16), 3), floor(2.7)));
               print(pow(2, 10));
               print(abs(0 - 5));
             }",
        );
        assert_eq!(out.printed, vec!["3", "1024", "5"]);
    }

    #[test]
    fn empty_forall_is_noop() {
        let out = run("fn main() { forall i in 5..5 { print(i); } print(1); }");
        assert_eq!(out.printed, vec!["1"]);
    }

    #[test]
    fn workers_builtin_reports_pool() {
        let p = parse("fn main() { print(workers()); }").unwrap();
        let out = Interp::new(3).run(&p).unwrap();
        assert_eq!(out.printed, vec!["3"]);
    }

    #[test]
    fn profile_records_forall_costs() {
        let p = parse(
            "fn main() { let n = 32; let a = array(n);
               forall i in 0..n {
                 let s = 0;
                 for k in 0..i { s = s + k; }
                 a[i] = s;
               }
               print(sum(a)); }",
        )
        .unwrap();
        let (out, profiles) = Interp::new(2).profile(&p).unwrap();
        assert_eq!(out.printed, vec!["4960"]);
        assert_eq!(profiles.len(), 1);
        let costs = &profiles[0].costs;
        assert_eq!(costs.len(), 32);
        // The body's inner loop runs `i` times: costs must increase.
        assert!(
            costs.last().unwrap() > &(costs[0] + 10),
            "triangular loop must show increasing per-iteration cost: {costs:?}"
        );
        // The monitor's hint matches the §4.1 vocabulary.
        assert_eq!(
            crate::lang::profile::suggest_hint(costs),
            Some(("cost_trend", "monotonic"))
        );
    }

    #[test]
    fn profile_output_matches_parallel_run() {
        let src = "fn main() { let n = 100; let a = array(n);
               forall i in 0..n { a[i] = i * 3; }
               print(sum(a)); }";
        let p = parse(src).unwrap();
        let run_out = Interp::new(4).run(&p).unwrap();
        let (prof_out, _) = Interp::new(4).profile(&p).unwrap();
        assert_eq!(run_out.printed, prof_out.printed);
    }

    #[test]
    fn profile_runs_spawn_and_future_inline() {
        let p = parse(
            "fn main() { let a = array(1);
               spawn { a[0] += 5; }
               future f = 2 * 4;
               print(a[0] + force(f)); }",
        )
        .unwrap();
        let (out, _) = Interp::new(2).profile(&p).unwrap();
        // Inline spawn runs *before* the print in a sequential profile.
        assert_eq!(out.printed, vec!["13"]);
        assert_eq!(out.sgt_spawns, 0, "profiling must not spawn SGTs");
    }

    #[test]
    fn profile_counts_loads_and_stores() {
        let p = parse(
            "fn main() { let a = array(8);
               for i in 0..8 { a[i] = 1; }
               let s = a[0] + a[1];
               print(s); }",
        )
        .unwrap();
        let interp = Interp::new(1);
        let state = {
            let (_, profiles) = interp.profile(&p).unwrap();
            profiles
        };
        // No forall in this program; the meter itself is validated through
        // the public profile() API indirectly (loads/stores counted on the
        // shared state which run_inner drops). The forall list is empty.
        assert!(state.is_empty());
    }

    #[test]
    fn nested_forall_profiles_both_levels() {
        let p = parse(
            "fn main() { let n = 6; let a = array(n * n);
               forall i in 0..n {
                 forall j in 0..n { a[i * n + j] = i + j; }
               }
               print(sum(a)); }",
        )
        .unwrap();
        let (out, profiles) = Interp::new(2).profile(&p).unwrap();
        assert_eq!(out.printed, vec!["180"]);
        // Inner foralls are recorded per outer iteration, plus the outer.
        assert_eq!(profiles.len(), 7);
    }
}
