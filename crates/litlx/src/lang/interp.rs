//! The LITL-X interpreter: executes programs on the native HTVM runtime.
//!
//! Mapping of language constructs onto the execution model:
//!
//! * a program run is one **LGT** ([`htvm_core::Htvm::lgt`]);
//! * `forall` bodies and `spawn` blocks become **SGTs** — the spawning
//!   thread participates in its own loop (helping), so loops finish even on
//!   a single worker;
//! * `future`/`force` lower onto [`crate::future::LitlFuture`];
//! * `atomic { … }` blocks serialize through the interpreter's atomic
//!   domain;
//! * `@hint` pragmas choose the `forall` schedule (`static`, `chunk`,
//!   `guided`) — the language-level face of the paper's loop-parallelism
//!   adaptation.
//!
//! Shared-variable semantics inside `forall` follow the usual parallel-loop
//! rule: arrays are shared (element writes race only if the program makes
//! them race), scalars assigned inside an iteration are last-writer-wins.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm_adapt::KnowledgeBase;
use htvm_core::{Htvm, HtvmConfig, Pool, PoolStats, SharedRegion, Topology};
use parking_lot::Mutex;

use super::ast::{BinOp, Expr, FnDef, Program, Stmt};
use super::executor::{self, ForallSpec, KernelMode, LoopStrategy};
use super::profile::{ForallProfile, ProfileState};
use crate::future::LitlFuture;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// A number (LITL-X is f64-only, like the pseudo-code of Fig. 3).
    Num(f64),
    /// An array of f64, aliased across scopes and threads.
    Arr(SharedRegion),
    /// An unresolved or resolved future of a number.
    Fut(LitlFuture<f64>),
    /// No value.
    Unit,
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Num(n) => write!(f, "Num({n})"),
            Value::Arr(a) => write!(f, "Arr(len={})", a.len()),
            Value::Fut(x) => write!(f, "Fut(resolved={})", x.is_resolved()),
            Value::Unit => write!(f, "Unit"),
        }
    }
}

impl Value {
    pub(crate) fn as_num(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Num(n) => Ok(*n),
            Value::Fut(_) => Err(format!("{what}: got an unforced future; apply force(…)")),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_arr(&self, what: &str) -> Result<SharedRegion, String> {
        match self {
            Value::Arr(a) => Ok(a.clone()),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn truthy(&self) -> bool {
        matches!(self, Value::Num(n) if *n != 0.0)
    }
}

/// Lexical environment: a chain of shared frames. Cloning shares frames
/// (child scopes see parent bindings; parallel bodies snapshot the chain).
#[derive(Clone, Default)]
pub(crate) struct Env {
    frames: Vec<Arc<Mutex<HashMap<String, Value>>>>,
}

impl Env {
    pub(crate) fn child(&self) -> Env {
        let mut e = self.clone();
        e.frames.push(Arc::new(Mutex::new(HashMap::new())));
        e
    }

    pub(crate) fn define(&self, name: &str, v: Value) {
        self.frames
            .last()
            .expect("env has a frame")
            .lock()
            .insert(name.to_string(), v);
    }

    pub(crate) fn get(&self, name: &str) -> Option<Value> {
        for f in self.frames.iter().rev() {
            if let Some(v) = f.lock().get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn assign(&self, name: &str, v: Value) -> bool {
        for f in self.frames.iter().rev() {
            let mut g = f.lock();
            if let Some(slot) = g.get_mut(name) {
                *slot = v;
                return true;
            }
        }
        false
    }
}

/// Shared interpreter state across all threads of one run.
pub(crate) struct Shared {
    program: Program,
    printed: Mutex<Vec<String>>,
    error: Mutex<Option<String>>,
    atomic_gate: Mutex<()>,
    pub(crate) sgt_spawns: AtomicU64,
    pub(crate) workers: usize,
    /// The loop-execution side: pool handle, session strategy, knowledge
    /// base, and SSP counters (see `lang::executor`).
    pub(crate) exec: ExecShared,
    /// When set, the run is a sequential *profiled* run: every AST node
    /// evaluated bumps the meter, `forall` records per-iteration costs,
    /// and `spawn`/`future` execute inline (see `lang::profile`).
    profile: Option<Arc<ProfileState>>,
}

/// Loop-execution state shared by all threads of a run.
pub(crate) struct ExecShared {
    /// The native pool, for domain-placed group spawns.
    pub(crate) pool: Arc<Pool>,
    /// Session-level loop strategy.
    pub(crate) strategy: LoopStrategy,
    /// Whether SSP loop bodies run compiled (run-at-a-time) or interpreted.
    pub(crate) kernel_mode: KernelMode,
    /// §4.1 knowledge base: pragma hints in, observed outcomes out.
    pub(crate) kb: Arc<Mutex<KnowledgeBase>>,
    /// `forall`s executed through the SSP pipeline.
    pub(crate) ssp_foralls: AtomicU64,
    /// `forall`s that attempted SSP and fell back to naive.
    pub(crate) ssp_bailouts: AtomicU64,
    /// SSP executions that needed a cross-group signal wavefront.
    pub(crate) ssp_wavefronts: AtomicU64,
    /// SSP executions that ran the compiled run-at-a-time kernel.
    pub(crate) ssp_compiled: AtomicU64,
}

impl Shared {
    pub(crate) fn fail(&self, msg: String) {
        let mut e = self.error.lock();
        if e.is_none() {
            *e = Some(msg);
        }
    }
}

/// Result of a program run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Lines produced by `print(...)`, in program order per thread
    /// (cross-thread order is scheduling-dependent).
    pub printed: Vec<String>,
    /// Number of SGTs the run spawned (forall chunks/groups, spawn
    /// blocks, futures).
    pub sgt_spawns: u64,
    /// `forall`s executed through the SSP lower→schedule→partition path.
    pub ssp_foralls: u64,
    /// `forall`s that attempted the SSP path and bailed back to naive.
    pub ssp_bailouts: u64,
    /// SSP executions whose partition needed a signal wavefront.
    pub ssp_wavefronts: u64,
    /// SSP executions that ran the compiled run-at-a-time kernel (0 when
    /// the interpreter was built with [`KernelMode::Interpreted`]).
    pub ssp_compiled: u64,
}

/// The LITL-X interpreter.
pub struct Interp {
    htvm: Htvm,
    workers: usize,
    strategy: LoopStrategy,
    kernel_mode: KernelMode,
    kb: Arc<Mutex<KnowledgeBase>>,
}

pub(crate) enum Flow {
    Normal,
    Return(Value),
}

impl Interp {
    /// An interpreter over a fresh HTVM runtime with `workers` workers and
    /// no locality grouping.
    pub fn new(workers: usize) -> Self {
        Self::with_topology(Topology::flat(workers))
    }

    /// An interpreter over a fresh HTVM runtime whose pool workers are
    /// grouped into the locality domains of `topology` — LITL-X programs
    /// then run on grouped domains like every other workload (SSP groups
    /// are placed round-robin across the domains).
    pub fn with_topology(topology: Topology) -> Self {
        let workers = topology.workers();
        Self {
            htvm: Htvm::new(HtvmConfig::with_topology(topology)),
            workers: workers.max(1),
            strategy: LoopStrategy::default(),
            kernel_mode: KernelMode::default(),
            kb: Arc::new(Mutex::new(KnowledgeBase::new())),
        }
    }

    /// Set the session loop strategy (builder style).
    pub fn with_strategy(mut self, strategy: LoopStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Choose how SSP loop bodies execute (builder style): the default
    /// [`KernelMode::Compiled`] run-at-a-time path, or the point-at-a-time
    /// tape interpreter ([`KernelMode::Interpreted`]). Program output is
    /// bit-identical either way; this exists for benchmarking and
    /// differential testing.
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Share a knowledge base (builder style) — e.g. one loaded from a
    /// persisted §4.1 database, or shared across interpreter instances so
    /// recorded loop outcomes carry over.
    pub fn with_knowledge(mut self, kb: Arc<Mutex<KnowledgeBase>>) -> Self {
        self.kb = kb;
        self
    }

    /// The knowledge base this interpreter reads hints from and records
    /// loop outcomes into.
    pub fn knowledge(&self) -> Arc<Mutex<KnowledgeBase>> {
        self.kb.clone()
    }

    /// Pool counters of the underlying runtime (steals, domain spawns).
    pub fn pool_stats(&self) -> PoolStats {
        self.htvm.pool_stats()
    }

    /// The locality-domain topology the interpreter runs on.
    pub fn topology(&self) -> &Topology {
        self.htvm.topology()
    }

    /// Run `main` (no arguments). Returns printed output or the first
    /// runtime error.
    pub fn run(&self, program: &Program) -> Result<RunOutput, String> {
        self.run_inner(program, None).map(|(out, _)| out)
    }

    /// Run `main` sequentially under the instruction meter, recording the
    /// per-iteration cost vector of every `forall` (§4.2's monitor feeding
    /// §3.3's continuous compilation). Output is identical to [`Interp::run`]
    /// for deterministic programs.
    pub fn profile(&self, program: &Program) -> Result<(RunOutput, Vec<ForallProfile>), String> {
        let state = Arc::new(ProfileState::new());
        let (out, st) = self.run_inner(program, Some(state))?;
        let profiles = st.expect("profile state present").foralls.lock().clone();
        Ok((out, profiles))
    }

    fn run_inner(
        &self,
        program: &Program,
        profile: Option<Arc<ProfileState>>,
    ) -> Result<(RunOutput, Option<Arc<ProfileState>>), String> {
        if program.get_fn("main").is_none() {
            return Err("program has no `main` function".to_string());
        }
        let shared = Arc::new(Shared {
            program: program.clone(),
            printed: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            atomic_gate: Mutex::new(()),
            sgt_spawns: AtomicU64::new(0),
            workers: self.workers,
            exec: ExecShared {
                pool: self.htvm.pool(),
                strategy: self.strategy,
                kernel_mode: self.kernel_mode,
                kb: self.kb.clone(),
                ssp_foralls: AtomicU64::new(0),
                ssp_bailouts: AtomicU64::new(0),
                ssp_wavefronts: AtomicU64::new(0),
                ssp_compiled: AtomicU64::new(0),
            },
            profile,
        });
        let sh = shared.clone();
        let handle = self.htvm.lgt(move |lgt| {
            let main = sh.program.get_fn("main").expect("checked above").clone();
            let scope = Scope {
                shared: sh.clone(),
                spawner: lgt,
            };
            if let Err(e) = scope.call_fn(&main, Vec::new()) {
                sh.fail(e);
            }
        });
        handle.join();
        let err = shared.error.lock().clone();
        if let Some(e) = err {
            return Err(e);
        }
        let printed = shared.printed.lock().clone();
        let out = RunOutput {
            printed,
            sgt_spawns: shared.sgt_spawns.load(Ordering::Relaxed),
            ssp_foralls: shared.exec.ssp_foralls.load(Ordering::Relaxed),
            ssp_bailouts: shared.exec.ssp_bailouts.load(Ordering::Relaxed),
            ssp_wavefronts: shared.exec.ssp_wavefronts.load(Ordering::Relaxed),
            ssp_compiled: shared.exec.ssp_compiled.load(Ordering::Relaxed),
        };
        Ok((out, shared.profile.clone()))
    }
}

/// A boxed interpreter job: runs with the spawn capability of the SGT that
/// executes it, so nested spawns never need `'static` contexts.
type SpawnJob = Box<dyn FnOnce(&dyn Spawn) + Send>;

/// Spawn capability — implemented by both LGT and SGT contexts, so the
/// statement walker is agnostic about which level it runs at.
trait Spawn {
    fn spawn_job(&self, job: SpawnJob);
}

impl Spawn for htvm_core::LgtCtx<'_> {
    fn spawn_job(&self, job: SpawnJob) {
        self.spawn_sgt(move |sgt| job(sgt));
    }
}

impl Spawn for htvm_core::SgtCtx<'_> {
    fn spawn_job(&self, job: SpawnJob) {
        self.spawn_sgt(move |sgt| job(sgt));
    }
}

/// An execution scope: shared state + spawn capability of the current
/// thread level.
pub(crate) struct Scope<'a> {
    pub(crate) shared: Arc<Shared>,
    spawner: &'a dyn Spawn,
}

impl Scope<'_> {
    pub(crate) fn spawn_sgt(&self, job: impl FnOnce(&Scope<'_>) + Send + 'static) {
        self.shared.sgt_spawns.fetch_add(1, Ordering::Relaxed);
        let shared = self.shared.clone();
        self.spawner.spawn_job(Box::new(move |sp: &dyn Spawn| {
            let scope = Scope {
                shared,
                spawner: sp,
            };
            job(&scope);
        }));
    }

    fn call_fn(&self, f: &Arc<FnDef>, args: Vec<Value>) -> Result<Value, String> {
        if args.len() != f.params.len() {
            return Err(format!(
                "{}: expected {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            ));
        }
        let env = Env::default().child();
        for (p, a) in f.params.iter().zip(args) {
            env.define(p, a);
        }
        match self.exec_block(&f.body, &env)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Unit),
        }
    }

    pub(crate) fn exec_block(&self, stmts: &[Stmt], env: &Env) -> Result<Flow, String> {
        for s in stmts {
            if let Flow::Return(v) = self.exec_stmt(s, env)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    /// Like [`Scope::exec_block`], but reports whether a `return` fired —
    /// for the loop executors, which must reject `return` inside `forall`
    /// without pattern-matching `Flow`.
    pub(crate) fn exec_block_returns(&self, stmts: &[Stmt], env: &Env) -> Result<bool, String> {
        Ok(matches!(self.exec_block(stmts, env)?, Flow::Return(_)))
    }

    fn exec_stmt(&self, stmt: &Stmt, env: &Env) -> Result<Flow, String> {
        match stmt {
            Stmt::Let(name, e) => {
                let v = self.eval(e, env)?;
                env.define(name, v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(name, e) => {
                let v = self.eval(e, env)?;
                if !env.assign(name, v) {
                    return Err(format!("assignment to undefined variable `{name}`"));
                }
                Ok(Flow::Normal)
            }
            Stmt::StoreIndex {
                array,
                index,
                value,
                accumulate,
            } => {
                let arr = env
                    .get(array)
                    .ok_or_else(|| format!("undefined array `{array}`"))?
                    .as_arr("indexed store")?;
                let i = self.eval(index, env)?.as_num("array index")? as usize;
                if i >= arr.len() {
                    return Err(format!(
                        "index {i} out of bounds for array of length {}",
                        arr.len()
                    ));
                }
                let v = self.eval(value, env)?.as_num("stored value")?;
                if let Some(p) = &self.shared.profile {
                    p.stores.fetch_add(1, Ordering::Relaxed);
                }
                if *accumulate {
                    arr.fetch_add_f64(i, v);
                } else {
                    arr.write_f64(i, v);
                }
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond, env)?.truthy() {
                    self.exec_block(then, &env.child())
                } else {
                    self.exec_block(els, &env.child())
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env)?.truthy() {
                    if let Flow::Return(v) = self.exec_block(body, &env.child())? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(var, from, to, body) => {
                let a = self.eval(from, env)?.as_num("for start")? as i64;
                let b = self.eval(to, env)?.as_num("for end")? as i64;
                for i in a..b {
                    let e = env.child();
                    e.define(var, Value::Num(i as f64));
                    if let Flow::Return(v) = self.exec_block(body, &e)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Forall {
                var,
                from,
                to,
                body,
                hints,
            } => {
                let a = self.eval(from, env)?.as_num("forall start")? as i64;
                let b = self.eval(to, env)?.as_num("forall end")? as i64;
                if let Some(p) = self.shared.profile.clone() {
                    self.run_forall_profiled(var, a, b, body, env, &p)?;
                } else {
                    executor::run_forall(
                        self,
                        &ForallSpec {
                            var,
                            from: a,
                            to: b,
                            body,
                            hints,
                            env,
                        },
                    )?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Spawn(body) => {
                if self.shared.profile.is_some() {
                    // Profiled runs are sequential: execute inline.
                    self.exec_block(body, &env.child())?;
                    return Ok(Flow::Normal);
                }
                let env = env.clone();
                let body = body.to_vec();
                self.spawn_sgt(move |scope| {
                    if let Err(e) = scope.exec_block(&body, &env.child()) {
                        scope.shared.fail(e);
                    }
                });
                Ok(Flow::Normal)
            }
            Stmt::Future(name, e) => {
                let fut: LitlFuture<f64> = LitlFuture::unresolved();
                env.define(name, Value::Fut(fut.clone()));
                if self.shared.profile.is_some() {
                    // Profiled runs resolve futures eagerly, inline.
                    let n = self.eval(e, env)?.as_num("future value")?;
                    fut.resolve(n);
                    return Ok(Flow::Normal);
                }
                let env2 = env.clone();
                let e = e.clone();
                self.spawn_sgt(move |scope| match scope.eval(&e, &env2) {
                    Ok(v) => match v.as_num("future value") {
                        Ok(n) => fut.resolve(n),
                        Err(err) => {
                            scope.shared.fail(err);
                            fut.resolve(f64::NAN);
                        }
                    },
                    Err(err) => {
                        scope.shared.fail(err);
                        fut.resolve(f64::NAN);
                    }
                });
                Ok(Flow::Normal)
            }
            Stmt::Atomic(body) => {
                let _gate = self.shared.atomic_gate.lock();
                self.exec_block(body, &env.child())
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Profiled (sequential) loop execution: meter every iteration and
    /// record the cost vector (§4.2's monitor feeding §3.3's continuous
    /// compilation). Parallel execution lives in `lang::executor`.
    fn run_forall_profiled(
        &self,
        var: &str,
        from: i64,
        to: i64,
        body: &[Stmt],
        env: &Env,
        p: &Arc<ProfileState>,
    ) -> Result<(), String> {
        let n = (to - from).max(0) as u64;
        let mut costs = Vec::with_capacity(n as usize);
        for i in 0..n {
            let before = p.ops_now();
            let e = env.child();
            e.define(var, Value::Num((from + i as i64) as f64));
            self.exec_block(body, &e)?;
            costs.push(p.ops_now() - before);
        }
        p.foralls.lock().push(ForallProfile {
            var: var.to_string(),
            costs,
        });
        Ok(())
    }

    pub(crate) fn eval(&self, e: &Expr, env: &Env) -> Result<Value, String> {
        if let Some(p) = &self.shared.profile {
            p.ops.fetch_add(1, Ordering::Relaxed);
        }
        match e {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Var(name) => env
                .get(name)
                .ok_or_else(|| format!("undefined variable `{name}`")),
            Expr::Index(arr, idx) => {
                let a = self.eval(arr, env)?.as_arr("indexing")?;
                let i = self.eval(idx, env)?.as_num("array index")? as usize;
                if i >= a.len() {
                    return Err(format!(
                        "index {i} out of bounds for array of length {}",
                        a.len()
                    ));
                }
                if let Some(p) = &self.shared.profile {
                    p.loads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Value::Num(a.read_f64(i)))
            }
            Expr::Neg(x) => Ok(Value::Num(-self.eval(x, env)?.as_num("negation")?)),
            Expr::Not(x) => Ok(Value::Num(if self.eval(x, env)?.truthy() {
                0.0
            } else {
                1.0
            })),
            Expr::Bin(op, l, r) => {
                // Short-circuit logicals.
                if *op == BinOp::And {
                    return Ok(Value::Num(
                        if self.eval(l, env)?.truthy() && self.eval(r, env)?.truthy() {
                            1.0
                        } else {
                            0.0
                        },
                    ));
                }
                if *op == BinOp::Or {
                    return Ok(Value::Num(
                        if self.eval(l, env)?.truthy() || self.eval(r, env)?.truthy() {
                            1.0
                        } else {
                            0.0
                        },
                    ));
                }
                let a = self.eval(l, env)?.as_num("left operand")?;
                let b = self.eval(r, env)?.as_num("right operand")?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Rem => a % b,
                    BinOp::Eq => (a == b) as i64 as f64,
                    BinOp::Ne => (a != b) as i64 as f64,
                    BinOp::Lt => (a < b) as i64 as f64,
                    BinOp::Le => (a <= b) as i64 as f64,
                    BinOp::Gt => (a > b) as i64 as f64,
                    BinOp::Ge => (a >= b) as i64 as f64,
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(Value::Num(v))
            }
            Expr::Call(name, args) => self.call(name, args, env),
        }
    }

    fn call(&self, name: &str, args: &[Expr], env: &Env) -> Result<Value, String> {
        // User functions shadow builtins.
        if let Some(f) = self.shared.program.get_fn(name) {
            let f = f.clone();
            let vals = args
                .iter()
                .map(|a| self.eval(a, env))
                .collect::<Result<Vec<_>, _>>()?;
            return self.call_fn(&f, vals);
        }
        let num = |i: usize| -> Result<f64, String> {
            self.eval(&args[i], env)?
                .as_num(&format!("{name} argument {i}"))
        };
        let need = |k: usize| -> Result<(), String> {
            if args.len() == k {
                Ok(())
            } else {
                Err(format!(
                    "{name}: expected {k} arguments, got {}",
                    args.len()
                ))
            }
        };
        match name {
            "array" => {
                need(1)?;
                let n = num(0)? as usize;
                Ok(Value::Arr(SharedRegion::new(n)))
            }
            "len" => {
                need(1)?;
                let a = self.eval(&args[0], env)?.as_arr("len")?;
                Ok(Value::Num(a.len() as f64))
            }
            "sum" => {
                need(1)?;
                let a = self.eval(&args[0], env)?.as_arr("sum")?;
                Ok(Value::Num((0..a.len()).map(|i| a.read_f64(i)).sum()))
            }
            "force" => {
                need(1)?;
                match self.eval(&args[0], env)? {
                    Value::Fut(f) => Ok(Value::Num(f.force())),
                    v => Ok(v),
                }
            }
            "sqrt" => {
                need(1)?;
                Ok(Value::Num(num(0)?.sqrt()))
            }
            "abs" => {
                need(1)?;
                Ok(Value::Num(num(0)?.abs()))
            }
            "exp" => {
                need(1)?;
                Ok(Value::Num(num(0)?.exp()))
            }
            "log" => {
                need(1)?;
                Ok(Value::Num(num(0)?.ln()))
            }
            "sin" => {
                need(1)?;
                Ok(Value::Num(num(0)?.sin()))
            }
            "cos" => {
                need(1)?;
                Ok(Value::Num(num(0)?.cos()))
            }
            "floor" => {
                need(1)?;
                Ok(Value::Num(num(0)?.floor()))
            }
            "pow" => {
                need(2)?;
                Ok(Value::Num(num(0)?.powf(num(1)?)))
            }
            "min" => {
                need(2)?;
                Ok(Value::Num(num(0)?.min(num(1)?)))
            }
            "max" => {
                need(2)?;
                Ok(Value::Num(num(0)?.max(num(1)?)))
            }
            "workers" => {
                need(0)?;
                Ok(Value::Num(self.shared.workers as f64))
            }
            "print" => {
                need(1)?;
                let v = self.eval(&args[0], env)?;
                let s = match v {
                    Value::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => {
                        format!("{}", n as i64)
                    }
                    Value::Num(n) => format!("{n}"),
                    Value::Arr(a) => format!("[array;{}]", a.len()),
                    Value::Fut(f) => format!("<future resolved={}>", f.is_resolved()),
                    Value::Unit => "()".to_string(),
                };
                self.shared.printed.lock().push(s);
                Ok(Value::Unit)
            }
            other => Err(format!("unknown function `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn run(src: &str) -> RunOutput {
        let p = parse(src).unwrap();
        Interp::new(4).run(&p).unwrap()
    }

    fn run_err(src: &str) -> String {
        let p = parse(src).unwrap();
        Interp::new(2).run(&p).unwrap_err()
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run("fn main() { print(1 + 2 * 3 - 4 / 2); }");
        assert_eq!(out.printed, vec!["5"]);
    }

    #[test]
    fn recursion_factorial() {
        let out = run(
            "fn fact(n) { if n <= 1 { return 1; } return n * fact(n - 1); }
             fn main() { print(fact(10)); }",
        );
        assert_eq!(out.printed, vec!["3628800"]);
    }

    #[test]
    fn while_loop_and_assignment() {
        let out = run("fn main() { let s = 0; let i = 0;
               while i < 10 { s = s + i; i = i + 1; }
               print(s); }");
        assert_eq!(out.printed, vec!["45"]);
    }

    #[test]
    fn sequential_for() {
        let out = run("fn main() { let a = array(5);
               for i in 0..5 { a[i] = i * i; }
               print(sum(a)); }");
        assert_eq!(out.printed, vec!["30"]);
    }

    #[test]
    fn forall_fills_array_in_parallel() {
        let out = run("fn main() { let n = 200; let a = array(n);
               forall i in 0..n { a[i] = i; }
               print(sum(a)); }");
        assert_eq!(out.printed, vec!["19900"]);
        assert!(out.sgt_spawns > 0, "forall must spawn helper SGTs");
    }

    #[test]
    fn forall_guided_schedule() {
        let out = run("fn main() { let n = 100; let a = array(n);
               @hint(schedule = \"guided\")
               forall i in 0..n { a[i] = 2 * i; }
               print(sum(a)); }");
        assert_eq!(out.printed, vec!["9900"]);
    }

    #[test]
    fn forall_chunk_schedule() {
        let out = run("fn main() { let n = 64; let a = array(n);
               @hint(schedule = \"chunk\", chunk = 4)
               forall i in 0..n { a[i] = 1; }
               print(sum(a)); }");
        assert_eq!(out.printed, vec!["64"]);
    }

    #[test]
    fn forall_accumulate_is_atomic() {
        let out = run("fn main() { let a = array(1);
               forall i in 0..1000 { a[0] += 1; }
               print(a[0]); }");
        assert_eq!(out.printed, vec!["1000"]);
    }

    #[test]
    fn future_force_round_trip() {
        let out = run(
            "fn slow(x) { let s = 0; for i in 0..100 { s = s + x; } return s; }
             fn main() { future f = slow(3); print(force(f)); }",
        );
        assert_eq!(out.printed, vec!["300"]);
    }

    #[test]
    fn spawn_joined_before_exit() {
        let out = run("fn main() { let a = array(1);
               spawn { a[0] = 42; }
             }");
        // The LGT join guarantees the spawn ran; nothing printed, no error.
        assert_eq!(out.printed, Vec::<String>::new());
        assert!(out.sgt_spawns >= 1);
    }

    #[test]
    fn atomic_blocks_serialize_rmw() {
        let out = run("fn main() { let a = array(1);
               forall i in 0..200 {
                 atomic { a[0] = a[0] + 1; }
               }
               print(a[0]); }");
        assert_eq!(out.printed, vec!["200"]);
    }

    #[test]
    fn nested_forall_completes() {
        let out = run("fn main() { let n = 8; let a = array(n * n);
               forall i in 0..n {
                 forall j in 0..n { a[i * n + j] = i + j; }
               }
               print(sum(a)); }");
        assert_eq!(out.printed, vec!["448"]);
    }

    #[test]
    fn errors_propagate() {
        assert!(run_err("fn main() { print(undefined_var); }").contains("undefined"));
        assert!(run_err("fn main() { let a = array(2); a[5] = 1; }").contains("out of bounds"));
        assert!(run_err("fn main() { nope(1); }").contains("unknown function"));
        assert!(run_err("fn f(a, b) { return a; } fn main() { f(1); }").contains("arguments"));
    }

    #[test]
    fn error_inside_forall_surfaces() {
        let err = run_err(
            "fn main() { let a = array(4);
               forall i in 0..100 { a[i] = 1; } }",
        );
        assert!(err.contains("out of bounds"), "got: {err}");
    }

    #[test]
    fn builtins_cover_math() {
        let out = run("fn main() {
               print(max(min(sqrt(16), 3), floor(2.7)));
               print(pow(2, 10));
               print(abs(0 - 5));
             }");
        assert_eq!(out.printed, vec!["3", "1024", "5"]);
    }

    #[test]
    fn empty_forall_is_noop() {
        let out = run("fn main() { forall i in 5..5 { print(i); } print(1); }");
        assert_eq!(out.printed, vec!["1"]);
    }

    #[test]
    fn workers_builtin_reports_pool() {
        let p = parse("fn main() { print(workers()); }").unwrap();
        let out = Interp::new(3).run(&p).unwrap();
        assert_eq!(out.printed, vec!["3"]);
    }

    #[test]
    fn profile_records_forall_costs() {
        let p = parse(
            "fn main() { let n = 32; let a = array(n);
               forall i in 0..n {
                 let s = 0;
                 for k in 0..i { s = s + k; }
                 a[i] = s;
               }
               print(sum(a)); }",
        )
        .unwrap();
        let (out, profiles) = Interp::new(2).profile(&p).unwrap();
        assert_eq!(out.printed, vec!["4960"]);
        assert_eq!(profiles.len(), 1);
        let costs = &profiles[0].costs;
        assert_eq!(costs.len(), 32);
        // The body's inner loop runs `i` times: costs must increase.
        assert!(
            costs.last().unwrap() > &(costs[0] + 10),
            "triangular loop must show increasing per-iteration cost: {costs:?}"
        );
        // The monitor's hint matches the §4.1 vocabulary.
        assert_eq!(
            crate::lang::profile::suggest_hint(costs),
            Some(("cost_trend", "monotonic"))
        );
    }

    #[test]
    fn profile_output_matches_parallel_run() {
        let src = "fn main() { let n = 100; let a = array(n);
               forall i in 0..n { a[i] = i * 3; }
               print(sum(a)); }";
        let p = parse(src).unwrap();
        let run_out = Interp::new(4).run(&p).unwrap();
        let (prof_out, _) = Interp::new(4).profile(&p).unwrap();
        assert_eq!(run_out.printed, prof_out.printed);
    }

    #[test]
    fn profile_runs_spawn_and_future_inline() {
        let p = parse(
            "fn main() { let a = array(1);
               spawn { a[0] += 5; }
               future f = 2 * 4;
               print(a[0] + force(f)); }",
        )
        .unwrap();
        let (out, _) = Interp::new(2).profile(&p).unwrap();
        // Inline spawn runs *before* the print in a sequential profile.
        assert_eq!(out.printed, vec!["13"]);
        assert_eq!(out.sgt_spawns, 0, "profiling must not spawn SGTs");
    }

    #[test]
    fn profile_counts_loads_and_stores() {
        let p = parse(
            "fn main() { let a = array(8);
               for i in 0..8 { a[i] = 1; }
               let s = a[0] + a[1];
               print(s); }",
        )
        .unwrap();
        let interp = Interp::new(1);
        let state = {
            let (_, profiles) = interp.profile(&p).unwrap();
            profiles
        };
        // No forall in this program; the meter itself is validated through
        // the public profile() API indirectly (loads/stores counted on the
        // shared state which run_inner drops). The forall list is empty.
        assert!(state.is_empty());
    }

    const MATMUL_SRC: &str = "fn main() {
        let n = 12;
        let a = array(n * n); let b = array(n * n); let c = array(n * n);
        forall i in 0..n * n { a[i] = i % 7; }
        forall i in 0..n * n { b[i] = i % 5; }
        forall i in 0..n {
          forall j in 0..n {
            for k in 0..n {
              c[i * n + j] += a[i * n + k] * b[k * n + j];
            }
          }
        }
        print(sum(c)); }";

    #[test]
    fn ssp_strategy_matches_naive_output_on_matmul() {
        let p = parse(MATMUL_SRC).unwrap();
        let naive = Interp::new(1).run(&p).unwrap();
        let ssp = Interp::with_topology(htvm_core::Topology::domains(2, 2))
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap();
        assert_eq!(ssp.printed, naive.printed);
        assert!(ssp.ssp_foralls >= 1, "matmul nest must take the SSP path");
        // The flat init loops are affine too (`%` is a supported kernel
        // op), so every forall of the program pipelines.
        assert_eq!(ssp.ssp_foralls, 3);
        assert_eq!(ssp.ssp_bailouts, 0);
        // The default kernel mode is compiled: every SSP forall ran the
        // run-at-a-time path.
        assert_eq!(ssp.ssp_compiled, 3);
    }

    #[test]
    fn kernel_modes_agree_bitwise_and_report_the_path() {
        let p = parse(MATMUL_SRC).unwrap();
        let interp = Interp::new(4)
            .with_strategy(LoopStrategy::Ssp)
            .with_kernel_mode(KernelMode::Interpreted)
            .run(&p)
            .unwrap();
        let compiled = Interp::new(4)
            .with_strategy(LoopStrategy::Ssp)
            .with_kernel_mode(KernelMode::Compiled)
            .run(&p)
            .unwrap();
        // Compiled execution preserves the interpreter's evaluation order
        // exactly (see `lang::compile`), so the printed output — a float
        // reduction over the result matrix — is bit-identical.
        assert_eq!(compiled.printed, interp.printed);
        assert_eq!(interp.ssp_compiled, 0);
        assert_eq!(compiled.ssp_compiled, compiled.ssp_foralls);
    }

    #[test]
    fn ssp_wavefront_preserves_carried_dependence_semantics() {
        // a[(i+1)*m + j] = a[i*m + j] + 1: iteration i+1 reads what i
        // wrote — a naive parallel fan-out would race; the SSP path must
        // detect the carried dependence and serialize groups through the
        // wavefront, reproducing sequential output exactly.
        let src = "fn main() {
            let n = 24; let m = 6;
            let a = array((n + 1) * m);
            for j in 0..m { a[j] = j; }
            forall i in 0..n {
              forall j in 0..m {
                a[(i + 1) * m + j] = a[i * m + j] + 1;
              }
            }
            for r in 0..(n + 1) * m { print(a[r]); } }";
        let p = parse(src).unwrap();
        let seq = Interp::new(1).run(&p).unwrap();
        let ssp = Interp::with_topology(htvm_core::Topology::domains(2, 2))
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap();
        assert_eq!(ssp.printed, seq.printed, "must match sequential");
        assert_eq!(ssp.ssp_foralls, 1);
        assert_eq!(ssp.ssp_bailouts, 0, "the nest is affine; no bail expected");
        // The planner partitions the *space* level j (the i-carried dep
        // drops there — it is satisfied by the sequential outer waves), so
        // no wavefront is needed: exactly the most-profitable-level story.
        assert_eq!(ssp.ssp_wavefronts, 0);
    }

    #[test]
    fn flat_recurrence_executes_as_sgt_wavefront() {
        // a[i+1] = a[i] + i: a genuine level-carried recurrence with only
        // one level to partition — the SSP path must chain the iteration
        // groups through the signal wavefront and still match sequential
        // output exactly (a naive parallel fan-out would race).
        let src = "fn main() {
            let n = 64;
            let a = array(n + 1);
            a[0] = 7;
            forall i in 0..n { a[i + 1] = a[i] + i; }
            for r in 0..n + 1 { print(a[r]); } }";
        let p = parse(src).unwrap();
        let seq = Interp::new(1).run(&p).unwrap();
        let ssp = Interp::with_topology(htvm_core::Topology::domains(2, 2))
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap();
        assert_eq!(ssp.printed, seq.printed, "wavefront must match sequential");
        assert_eq!(ssp.ssp_foralls, 1);
        assert_eq!(ssp.ssp_bailouts, 0);
        assert_eq!(ssp.ssp_wavefronts, 1, "the carried dep needs the wavefront");
    }

    #[test]
    fn pipeline_pragma_forces_ssp_under_naive_strategy() {
        let src = "fn main() {
            let n = 8;
            let y = array(n * n);
            @hint(pipeline)
            forall i in 0..n {
              forall j in 0..n { y[i * n + j] = i + j; }
            }
            print(sum(y)); }";
        let p = parse(src).unwrap();
        let out = Interp::new(2).run(&p).unwrap();
        assert_eq!(out.printed, vec!["448"]);
        assert_eq!(
            out.ssp_foralls, 1,
            "@hint(pipeline) must force the SSP path"
        );
    }

    #[test]
    fn pipeline_pragma_can_force_naive_under_ssp_strategy() {
        let src = "fn main() {
            let n = 64;
            let y = array(n);
            @hint(pipeline = 0)
            forall i in 0..n { y[i] = 2 * i; }
            print(sum(y)); }";
        let p = parse(src).unwrap();
        let out = Interp::new(2)
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap();
        assert_eq!(out.printed, vec!["4032"]);
        assert_eq!(out.ssp_foralls, 0, "@hint(pipeline = 0) must force naive");
        assert_eq!(out.ssp_bailouts, 0, "forced naive is not a bail-out");
    }

    #[test]
    fn non_affine_loops_bail_to_naive_under_ssp_strategy() {
        let src = "fn main() {
            let n = 50; let a = array(n);
            forall i in 0..n { if i < 25 { a[i] = 1; } }
            print(sum(a)); }";
        let p = parse(src).unwrap();
        let out = Interp::new(2)
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap();
        assert_eq!(out.printed, vec!["25"]);
        assert_eq!(out.ssp_foralls, 0);
        assert_eq!(out.ssp_bailouts, 1, "a guarded body is not lowerable");
    }

    #[test]
    fn ssp_out_of_bounds_store_is_an_error() {
        let src = "fn main() {
            let a = array(10);
            forall i in 0..8 {
              forall j in 0..4 { a[i * 4 + j] = 1; }
            } }";
        let p = parse(src).unwrap();
        let err = Interp::new(2)
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap_err();
        assert!(err.contains("out of bounds"), "got: {err}");
    }

    #[test]
    fn knowledge_base_records_loop_outcomes() {
        let src = "fn main() {
            let n = 16; let y = array(n * n);
            forall i in 0..n {
              forall j in 0..n { y[i * n + j] = i * j; }
            }
            print(sum(y)); }";
        let p = parse(src).unwrap();
        let interp = Interp::new(2).with_strategy(LoopStrategy::Adaptive);
        let kb = interp.knowledge();
        let out = interp.run(&p).unwrap();
        assert_eq!(out.printed, vec!["14400"]);
        // The adaptive policy ran the nest one way and recorded it under
        // the loop's fingerprinted program point.
        let text = kb.lock().to_text().unwrap();
        assert!(
            text.lines().any(|l| l.starts_with("outcome\ti@")),
            "loop outcome must land in the knowledge base: {text:?}"
        );
    }

    #[test]
    fn ssp_groups_are_placed_across_domains() {
        let src = "fn main() {
            let n = 16; let y = array(n * n);
            @hint(pipeline)
            forall i in 0..n {
              forall j in 0..n { y[i * n + j] = i + j; }
            }
            print(sum(y)); }";
        let p = parse(src).unwrap();
        let interp = Interp::with_topology(htvm_core::Topology::domains(2, 1));
        let out = interp.run(&p).unwrap();
        assert_eq!(out.ssp_foralls, 1);
        let stats = interp.pool_stats();
        assert_eq!(stats.domain_spawns.len(), 2);
        assert!(
            stats.domain_spawns.iter().all(|&d| d > 0),
            "round-robin placement must hit every domain: {:?}",
            stats.domain_spawns
        );
        assert_eq!(interp.topology().num_domains(), 2);
    }

    #[test]
    fn nested_forall_profiles_both_levels() {
        let p = parse(
            "fn main() { let n = 6; let a = array(n * n);
               forall i in 0..n {
                 forall j in 0..n { a[i * n + j] = i + j; }
               }
               print(sum(a)); }",
        )
        .unwrap();
        let (out, profiles) = Interp::new(2).profile(&p).unwrap();
        assert_eq!(out.printed, vec!["180"]);
        // Inner foralls are recorded per outer iteration, plus the outer.
        assert_eq!(profiles.len(), 7);
    }
}
