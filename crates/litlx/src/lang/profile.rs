//! Profiling mode: the language-level face of the paper's runtime
//! performance monitor (§4.2).
//!
//! "The static compiler acts according to the pragma and generates some
//! (partial) schedules" (§3.3) — but iteration costs of a `forall` are
//! runtime facts the static compiler cannot know. A profiled run executes
//! the program *sequentially* with an instruction meter and records, for
//! every `forall`, the per-iteration operation counts. Those cost vectors
//! are exactly what the continuous compiler (`htvm-adapt`) needs to
//! complete a partial schedule, and [`suggest_hint`] turns a vector into
//! the structured-hint vocabulary of §4.1 (`cost_trend`, `cost_variance`).
//!
//! Profiling is sequential by design: `spawn` blocks run inline and
//! `future`s resolve eagerly, so per-iteration deltas are exact and the
//! profile is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Meter state threaded through a profiled run.
#[derive(Debug, Default)]
pub struct ProfileState {
    /// AST nodes evaluated (the abstract "operations" unit).
    pub ops: AtomicU64,
    /// Array element reads.
    pub loads: AtomicU64,
    /// Array element writes (including accumulates).
    pub stores: AtomicU64,
    /// One record per `forall` executed, in encounter order.
    pub foralls: Mutex<Vec<ForallProfile>>,
}

impl ProfileState {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current op count (Relaxed: profiling is single-threaded).
    pub fn ops_now(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

/// The measured cost profile of one `forall` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ForallProfile {
    /// Induction-variable name (for report readability).
    pub var: String,
    /// Per-iteration operation counts, in iteration order. Nested
    /// constructs executed by an iteration are charged to that iteration.
    pub costs: Vec<u64>,
}

impl ForallProfile {
    /// Total operations across the loop.
    pub fn total(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Coefficient of variation of the per-iteration costs.
    pub fn cv(&self) -> f64 {
        let n = self.costs.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .costs
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// Classify a measured cost vector into the §4.1 structured-hint
/// vocabulary understood by `htvm-adapt`'s knowledge base:
///
/// * near-constant costs → `("cost_variance", "none")` (static schedules
///   suffice);
/// * monotone (Spearman-like trend over thirds) → `("cost_trend",
///   "monotonic")` (guided/trapezoid/factoring);
/// * otherwise high variance → `("cost_variance", "high")` (fine-grained
///   dynamic schedules).
///
/// Returns `None` when the vector is too short to say anything.
pub fn suggest_hint(costs: &[u64]) -> Option<(&'static str, &'static str)> {
    if costs.len() < 8 {
        return None;
    }
    let n = costs.len() as f64;
    let mean = costs.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return None;
    }
    let var = costs
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let cv = var.sqrt() / mean;
    if cv < 0.05 {
        return Some(("cost_variance", "none"));
    }
    // Trend check: compare the first and last third means; a monotone ramp
    // separates them by well over the within-third noise.
    let third = costs.len() / 3;
    let head = costs[..third].iter().sum::<u64>() as f64 / third as f64;
    let tail = costs[costs.len() - third..].iter().sum::<u64>() as f64 / third as f64;
    let spread = (head - tail).abs() / mean;
    if spread > 0.5 {
        return Some(("cost_trend", "monotonic"));
    }
    Some(("cost_variance", "high"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggest_uniform() {
        let costs = vec![100u64; 64];
        assert_eq!(suggest_hint(&costs), Some(("cost_variance", "none")));
    }

    #[test]
    fn suggest_monotonic_for_ramps() {
        let inc: Vec<u64> = (0..64).map(|i| 10 + i * 5).collect();
        assert_eq!(suggest_hint(&inc), Some(("cost_trend", "monotonic")));
        let dec: Vec<u64> = (0..64).map(|i| 10 + (63 - i) * 5).collect();
        assert_eq!(suggest_hint(&dec), Some(("cost_trend", "monotonic")));
    }

    #[test]
    fn suggest_high_variance_for_bimodal() {
        let bi: Vec<u64> = (0..64).map(|i| if i % 7 == 0 { 500 } else { 50 }).collect();
        assert_eq!(suggest_hint(&bi), Some(("cost_variance", "high")));
    }

    #[test]
    fn suggest_nothing_for_tiny_loops() {
        assert_eq!(suggest_hint(&[1, 2, 3]), None);
        assert_eq!(suggest_hint(&[]), None);
        assert_eq!(suggest_hint(&[0; 20]), None);
    }

    #[test]
    fn profile_statistics() {
        let p = ForallProfile {
            var: "i".into(),
            costs: vec![10, 20, 30],
        };
        assert_eq!(p.total(), 60);
        assert!(p.cv() > 0.0);
        let flat = ForallProfile {
            var: "i".into(),
            costs: vec![5; 10],
        };
        assert!(flat.cv() < 1e-12);
        let empty = ForallProfile {
            var: "i".into(),
            costs: vec![],
        };
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.cv(), 0.0);
    }
}
