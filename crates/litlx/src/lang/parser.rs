//! Recursive-descent parser for LITL-X.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::ast::{BinOp, Expr, FnDef, Hint, HintValue, Program, Stmt};
use super::lexer::{lex, Spanned, Token};

/// A parse failure with a line number and message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse LITL-X source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|msg| ParseError { line: 0, msg })?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Token::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found `{other}`")),
        }
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Token::Punct(q) if *q == p)
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.is_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected keyword `{kw}`, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut fns = Vec::new();
        loop {
            if matches!(self.peek(), Token::Eof) {
                break;
            }
            let hints = self.pragmas()?;
            if self.is_kw("fn") {
                fns.push(Arc::new(self.fndef(hints)?));
            } else {
                return self.err(format!("expected `fn`, found `{}`", self.peek()));
            }
        }
        Ok(Program { fns })
    }

    fn pragmas(&mut self) -> Result<Vec<Hint>, ParseError> {
        let mut hints = Vec::new();
        while self.is_punct("@") {
            self.bump();
            let name = self.ident()?;
            let mut kv = BTreeMap::new();
            self.eat_punct("(")?;
            if !self.is_punct(")") {
                loop {
                    let key = self.ident()?;
                    // A bare key is a flag: `@hint(pipeline)` ≡
                    // `@hint(pipeline = 1)`.
                    let val = if self.is_punct("=") {
                        self.bump();
                        match self.bump() {
                            Token::Str(s) => HintValue::Str(s),
                            Token::Num(n) => HintValue::Num(n),
                            Token::Ident(s) => HintValue::Str(s),
                            other => return self.err(format!("bad pragma value `{other}`")),
                        }
                    } else {
                        HintValue::Num(1.0)
                    };
                    kv.insert(key, val);
                    if self.is_punct(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.eat_punct(")")?;
            hints.push(Hint { name, kv });
        }
        Ok(hints)
    }

    fn fndef(&mut self, hints: Vec<Hint>) -> Result<FnDef, ParseError> {
        self.eat_kw("fn")?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.is_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.is_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        let body = self.block()?;
        Ok(FnDef {
            name,
            params,
            body,
            hints,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.is_punct("}") {
            if matches!(self.peek(), Token::Eof) {
                return self.err("unexpected end of input inside block");
            }
            stmts.push(self.stmt()?);
        }
        self.eat_punct("}")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let hints = self.pragmas()?;
        if !hints.is_empty() {
            // Pragmas may only precede forall loops (the adaptive-schedule
            // target) — anything else is a user error worth reporting.
            if !self.is_kw("forall") {
                return self.err("pragma must precede a `forall` loop");
            }
            return self.forall(hints);
        }
        if self.is_kw("let") {
            self.bump();
            let name = self.ident()?;
            self.eat_punct("=")?;
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.is_kw("if") {
            self.bump();
            let cond = self.expr()?;
            let then = self.block()?;
            let els = if self.is_kw("else") {
                self.bump();
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.is_kw("while") {
            self.bump();
            let cond = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.is_kw("for") {
            self.bump();
            let var = self.ident()?;
            self.eat_kw("in")?;
            let from = self.expr()?;
            self.eat_punct("..")?;
            let to = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::For(var, from, to, body));
        }
        if self.is_kw("forall") {
            return self.forall(Vec::new());
        }
        if self.is_kw("spawn") {
            self.bump();
            let body = self.block()?;
            return Ok(Stmt::Spawn(body));
        }
        if self.is_kw("atomic") {
            self.bump();
            let body = self.block()?;
            return Ok(Stmt::Atomic(body));
        }
        if self.is_kw("future") {
            self.bump();
            let name = self.ident()?;
            self.eat_punct("=")?;
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Future(name, e));
        }
        if self.is_kw("return") {
            self.bump();
            if self.is_punct(";") {
                self.bump();
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.eat_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        // Assignment / indexed store / expression statement.
        if let Token::Ident(name) = self.peek().clone() {
            // Lookahead for `name =`, `name[`.
            let next = &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok;
            if matches!(next, Token::Punct("=")) {
                self.bump();
                self.bump();
                let e = self.expr()?;
                self.eat_punct(";")?;
                return Ok(Stmt::Assign(name, e));
            }
            if matches!(next, Token::Punct("[")) {
                // Could be a store `a[i] = e;` / `a[i] += e;` or an
                // expression like `a[i];` — parse the index, then decide.
                let save = self.pos;
                self.bump();
                self.bump();
                let idx = self.expr()?;
                self.eat_punct("]")?;
                if self.is_punct("=") {
                    self.bump();
                    let value = self.expr()?;
                    self.eat_punct(";")?;
                    return Ok(Stmt::StoreIndex {
                        array: name,
                        index: idx,
                        value,
                        accumulate: false,
                    });
                }
                if self.is_punct("+=") {
                    self.bump();
                    let value = self.expr()?;
                    self.eat_punct(";")?;
                    return Ok(Stmt::StoreIndex {
                        array: name,
                        index: idx,
                        value,
                        accumulate: true,
                    });
                }
                self.pos = save;
            }
        }
        let e = self.expr()?;
        self.eat_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn forall(&mut self, hints: Vec<Hint>) -> Result<Stmt, ParseError> {
        self.eat_kw("forall")?;
        let var = self.ident()?;
        self.eat_kw("in")?;
        let from = self.expr()?;
        self.eat_punct("..")?;
        let to = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::Forall {
            var,
            from,
            to,
            body,
            hints,
        })
    }

    // Expression precedence: || < && < cmp < add < mul < unary < postfix.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.is_punct("||") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.is_punct("&&") {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Punct("==") => Some(BinOp::Eq),
            Token::Punct("!=") => Some(BinOp::Ne),
            Token::Punct("<") => Some(BinOp::Lt),
            Token::Punct("<=") => Some(BinOp::Le),
            Token::Punct(">") => Some(BinOp::Gt),
            Token::Punct(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Punct("+") => BinOp::Add,
                Token::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Punct("*") => BinOp::Mul,
                Token::Punct("/") => BinOp::Div,
                Token::Punct("%") => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.is_punct("-") {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.is_punct("!") {
            self.bump();
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.is_punct("[") {
                self.bump();
                let idx = self.expr()?;
                self.eat_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Token::Num(n) => Ok(Expr::Num(n)),
            Token::Ident(name) => {
                if self.is_punct("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.is_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.is_punct(",") {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct(")")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Token::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => Err(ParseError {
                line,
                msg: format!("expected expression, found `{other}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_main() {
        let p = parse("fn main() { let x = 1 + 2 * 3; }").unwrap();
        assert_eq!(p.fns.len(), 1);
        let f = p.get_fn("main").unwrap();
        match &f.body[0] {
            Stmt::Let(name, Expr::Bin(BinOp::Add, _, rhs)) => {
                assert_eq!(name, "x");
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_forall_with_hint() {
        let src = r#"
            fn main() {
                let a = array(10);
                @hint(schedule = "guided", chunk = 4)
                forall i in 0..10 { a[i] = i; }
            }
        "#;
        let p = parse(src).unwrap();
        let hints = p.hints();
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].1.get_str("schedule"), Some("guided"));
        assert_eq!(hints[0].1.get_num("chunk"), Some(4.0));
    }

    #[test]
    fn pragma_on_non_forall_is_rejected() {
        let src = "fn main() { @hint(x = 1) let y = 2; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            fn f(n) {
                if n <= 1 { return 1; } else { return n * f(n - 1); }
            }
            fn main() { let x = f(5); }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.fns.len(), 2);
        assert!(matches!(p.get_fn("f").unwrap().body[0], Stmt::If(..)));
    }

    #[test]
    fn parses_future_spawn_atomic() {
        let src = r#"
            fn main() {
                future x = 1 + 2;
                spawn { let y = 1; }
                atomic { let z = 2; }
                let v = force(x);
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.get_fn("main").unwrap().body;
        assert!(matches!(body[0], Stmt::Future(..)));
        assert!(matches!(body[1], Stmt::Spawn(..)));
        assert!(matches!(body[2], Stmt::Atomic(..)));
    }

    #[test]
    fn parses_indexed_accumulate() {
        let p = parse("fn main() { let a = array(4); a[0] += 2; }").unwrap();
        match &p.get_fn("main").unwrap().body[1] {
            Stmt::StoreIndex { accumulate, .. } => assert!(accumulate),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parens() {
        let p = parse("fn main() { let x = (1 + 2) * 3; }").unwrap();
        match &p.get_fn("main").unwrap().body[0] {
            Stmt::Let(_, Expr::Bin(BinOp::Mul, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_line() {
        let err = parse("fn main() {\n let x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn nested_indexing_parses() {
        let p = parse("fn main() { let a = array(4); let x = a[a[0]]; }").unwrap();
        match &p.get_fn("main").unwrap().body[1] {
            Stmt::Let(_, Expr::Index(arr, idx)) => {
                assert!(matches!(**arr, Expr::Var(_)));
                assert!(matches!(**idx, Expr::Index(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
