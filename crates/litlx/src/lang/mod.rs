//! The LITL-X prototype language.
//!
//! §3.2 of the paper proposes LITL-X as "a powerful set of semantic
//! constructs to organize parallel computations in a way that
//! hides/manages latency and limits the effects of overhead", and §4.1 has
//! domain experts expressing knowledge "as scripts, which give specific
//! annotations to the source". This module implements that prototype:
//! a small imperative language with
//!
//! * `forall i in a..b { … }` — parallel loop, executed as SGTs with the
//!   schedule chosen by an `@hint` pragma (`static`, `chunk(k)`, `guided`),
//! * `spawn { … }` — fire-and-forget SGT (joined at LGT exit),
//! * `future x = expr;` / `force(x)` — eager producer-consumer values,
//! * `atomic { … }` — an atomic block of memory operations,
//! * `@hint(key = value, …)` — structured-hint pragmas attached to the
//!   following statement or function; exported to the tooling via
//!   [`Program::hints`].
//!
//! ```
//! use litlx::lang::{parse, Interp};
//!
//! let src = r#"
//!     fn main() {
//!         let n = 64;
//!         let a = array(n);
//!         @hint(schedule = "guided")
//!         forall i in 0..n {
//!             a[i] = i * 2;
//!         }
//!         let s = sum(a);
//!         print(s);
//!     }
//! "#;
//! let prog = parse(src).unwrap();
//! let out = Interp::new(2).run(&prog).unwrap();
//! assert_eq!(out.printed, vec!["4032".to_string()]);
//! ```

pub mod ast;
pub mod compile;
pub mod executor;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod profile;

pub use ast::{Expr, FnDef, Hint, Program, Stmt};
pub use compile::{compile, CompileInfo, CompiledKernel, KernelFault};
pub use executor::{KernelMode, LoopStrategy};
pub use interp::{Interp, RunOutput, Value};
pub use lexer::{lex, Token};
pub use lower::{lower_forall, Kernel, LowerBail, LoweredForall};
pub use parser::{parse, ParseError};
pub use profile::{suggest_hint, ForallProfile, ProfileState};
