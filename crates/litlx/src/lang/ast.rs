//! Abstract syntax of LITL-X.

use std::collections::BTreeMap;
use std::sync::Arc;

/// A structured-hint pragma: `@name(key = value, …)`.
///
/// Hints are *data*, carried through compilation to the adaptive runtime
/// (§4.1). Values are strings or numbers; the `htvm-adapt` crate interprets
/// well-known keys (`schedule`, `chunk`, `level`, `locality`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Hint {
    /// Pragma name (`hint`, `ssp`, …).
    pub name: String,
    /// Key/value annotations.
    pub kv: BTreeMap<String, HintValue>,
}

/// A pragma value.
#[derive(Debug, Clone, PartialEq)]
pub enum HintValue {
    /// String value, e.g. `schedule = "guided"`.
    Str(String),
    /// Numeric value, e.g. `chunk = 8`.
    Num(f64),
}

impl Hint {
    /// Fetch a string-valued key.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.kv.get(key) {
            Some(HintValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Fetch a numeric key.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.kv.get(key) {
            Some(HintValue::Num(n)) => Some(*n),
            _ => None,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable reference.
    Var(String),
    /// `a[i]`
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical not `!e`.
    Not(Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
}

/// Statements. Each statement may carry hint pragmas written directly
/// above it.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;`
    Let(String, Expr),
    /// `x = e;`
    Assign(String, Expr),
    /// `a[i] = e;` / `a[i] += e;`
    StoreIndex {
        /// Array variable.
        array: String,
        /// Index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
        /// Whether this is `+=` (atomic accumulate) rather than `=`.
        accumulate: bool,
    },
    /// `if cond { … } else { … }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while cond { … }`
    While(Expr, Vec<Stmt>),
    /// Sequential `for i in a..b { … }`.
    For(String, Expr, Expr, Vec<Stmt>),
    /// Parallel `forall i in a..b { … }` with attached hints.
    Forall {
        /// Induction variable.
        var: String,
        /// Range start.
        from: Expr,
        /// Range end (exclusive).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Pragmas attached to this loop.
        hints: Vec<Hint>,
    },
    /// `spawn { … }` — fire-and-forget SGT.
    Spawn(Vec<Stmt>),
    /// `future x = e;` — eager asynchronous evaluation.
    Future(String, Expr),
    /// `atomic { … }` — atomic block of memory operations.
    Atomic(Vec<Stmt>),
    /// `return e;`
    Return(Option<Expr>),
    /// Bare expression statement.
    Expr(Expr),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Pragmas attached to the function.
    pub hints: Vec<Hint>,
}

/// A parsed LITL-X program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All functions, `main` included.
    pub fns: Vec<Arc<FnDef>>,
}

impl Program {
    /// Find a function by name.
    pub fn get_fn(&self, name: &str) -> Option<&Arc<FnDef>> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// Every hint pragma in the program, paired with the name of the
    /// enclosing function — the "structured hints" handed to the knowledge
    /// base (§4.1).
    pub fn hints(&self) -> Vec<(String, Hint)> {
        let mut out = Vec::new();
        for f in &self.fns {
            for h in &f.hints {
                out.push((f.name.clone(), h.clone()));
            }
            collect_stmt_hints(&f.body, &f.name, &mut out);
        }
        out
    }
}

fn collect_stmt_hints(stmts: &[Stmt], scope: &str, out: &mut Vec<(String, Hint)>) {
    for s in stmts {
        match s {
            Stmt::Forall { body, hints, .. } => {
                for h in hints {
                    out.push((scope.to_string(), h.clone()));
                }
                collect_stmt_hints(body, scope, out);
            }
            Stmt::If(_, a, b) => {
                collect_stmt_hints(a, scope, out);
                collect_stmt_hints(b, scope, out);
            }
            Stmt::While(_, b) | Stmt::For(_, _, _, b) | Stmt::Spawn(b) | Stmt::Atomic(b) => {
                collect_stmt_hints(b, scope, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_accessors() {
        let mut kv = BTreeMap::new();
        kv.insert("schedule".to_string(), HintValue::Str("guided".into()));
        kv.insert("chunk".to_string(), HintValue::Num(8.0));
        let h = Hint {
            name: "hint".into(),
            kv,
        };
        assert_eq!(h.get_str("schedule"), Some("guided"));
        assert_eq!(h.get_num("chunk"), Some(8.0));
        assert_eq!(h.get_str("chunk"), None);
        assert_eq!(h.get_num("missing"), None);
    }

    #[test]
    fn program_hint_collection_recurses() {
        let hint = Hint {
            name: "hint".into(),
            kv: BTreeMap::new(),
        };
        let inner = Stmt::Forall {
            var: "i".into(),
            from: Expr::Num(0.0),
            to: Expr::Num(1.0),
            body: vec![],
            hints: vec![hint.clone()],
        };
        let f = FnDef {
            name: "main".into(),
            params: vec![],
            body: vec![Stmt::While(Expr::Num(1.0), vec![inner])],
            hints: vec![hint.clone()],
        };
        let p = Program {
            fns: vec![Arc::new(f)],
        };
        assert_eq!(p.hints().len(), 2);
        assert!(p.get_fn("main").is_some());
        assert!(p.get_fn("nope").is_none());
    }
}
