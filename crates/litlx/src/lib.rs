//! # litlx — the LITL-X programming constructs and mini-language
//!
//! LITL-X ("Latency Intrinsic-Tolerant Language", §3.2 of Gao et al.,
//! IPDPS 2006) organizes parallel computation so that latency is *hidden*
//! rather than avoided. The paper specifies five construct classes; each has
//! a module here:
//!
//! | Paper construct | Module |
//! |---|---|
//! | Coarse-grain multithreading with in-stream context switching | provided by `htvm-sim` hardware threads + [`future`] continuations |
//! | Parcel-driven split-transaction computation | [`parcel`] |
//! | Futures with localized buffering of requests | [`future`] |
//! | Percolation of code/data ahead of execution | [`percolate`] |
//! | Dataflow synchronization + atomic memory blocks | [`dataflow`], [`atomic`] |
//!
//! The [`lang`] module implements the LITL-X prototype language itself: a
//! small imperative language with `forall`, `spawn`, `future`/`force`,
//! `atomic` and `@hint(...)` pragmas, interpreted on the native HTVM
//! runtime. Domain-expert "scripts" (§4.1) are LITL-X source with hint
//! pragmas; the structured hints they carry are extracted into the schema
//! defined by `htvm-adapt`.
//!
//! # Example
//!
//! Parse and run a LITL-X kernel on the native runtime:
//!
//! ```
//! use litlx::lang::{parse, Interp};
//!
//! let prog = parse(
//!     "fn main() {
//!          let n = 8;
//!          let a = array(n);
//!          forall i in 0..n { a[i] = i * 2; }
//!          print(sum(a));
//!      }",
//! )
//! .expect("kernel parses");
//! let out = Interp::new(2).run(&prog).expect("kernel runs");
//! assert_eq!(out.printed, vec!["56"]);
//! ```

pub mod atomic;
pub mod dataflow;
pub mod future;
pub mod lang;
pub mod parcel;
pub mod percolate;

pub use atomic::AtomicDomain;
pub use dataflow::FeRegion;
pub use future::{future_on, LitlFuture};
pub use parcel::{NativeParcel, ParcelBuilder, ParcelFault, RemoteReduce, ReplayAction};
pub use percolate::{PercolateKernel, PercolationPlan};
