//! Atomic blocks of memory operations (§3.2, last bullet: "synchronization
//! constructs for data-flow style operations, as well as atomic blocks of
//! memory operations").
//!
//! An [`AtomicDomain`] provides multi-word atomic sections over a
//! [`SharedRegion`]: the block declares the word ranges it touches, the
//! domain acquires the corresponding stripe locks in a canonical order
//! (deadlock-free two-phase locking), runs the closure, and releases. This
//! is the transactional-flavoured construct LITL-X offers instead of
//! exposing raw locks to the application programmer.

use htvm_core::SharedRegion;
use parking_lot::Mutex;

/// Granularity-striped lock domain over a [`SharedRegion`].
pub struct AtomicDomain {
    region: SharedRegion,
    stripes: Vec<Mutex<()>>,
    words_per_stripe: usize,
}

impl AtomicDomain {
    /// Protect `region` with `stripes` locks (rounded up to at least 1).
    pub fn new(region: SharedRegion, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let words_per_stripe = region.len().div_ceil(stripes).max(1);
        Self {
            region,
            stripes: (0..stripes).map(|_| Mutex::new(())).collect(),
            words_per_stripe,
        }
    }

    /// The protected region.
    pub fn region(&self) -> &SharedRegion {
        &self.region
    }

    fn stripe_of(&self, word: usize) -> usize {
        (word / self.words_per_stripe).min(self.stripes.len() - 1)
    }

    /// Run `f` atomically with respect to every other `atomic` call whose
    /// ranges overlap the given word ranges. Lock acquisition is ordered by
    /// stripe index, so concurrent blocks cannot deadlock.
    pub fn atomic<R>(
        &self,
        ranges: &[std::ops::Range<usize>],
        f: impl FnOnce(&SharedRegion) -> R,
    ) -> R {
        let mut needed: Vec<usize> = ranges
            .iter()
            .flat_map(|r| {
                let lo = self.stripe_of(r.start);
                let hi = self.stripe_of(r.end.saturating_sub(1).max(r.start));
                lo..=hi
            })
            .collect();
        needed.sort_unstable();
        needed.dedup();
        let _guards: Vec<_> = needed.iter().map(|&s| self.stripes[s].lock()).collect();
        f(&self.region)
    }

    /// Atomically move `amount` from word `from` to word `to` — the classic
    /// two-location update that single-word atomics cannot express.
    pub fn transfer(&self, from: usize, to: usize, amount: u64) -> bool {
        self.atomic(&[from..from + 1, to..to + 1], |r| {
            let cur = r.read(from);
            if cur < amount {
                return false;
            }
            r.write(from, cur - amount);
            r.write(to, r.read(to) + amount);
            true
        })
    }
}

impl std::fmt::Debug for AtomicDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicDomain")
            .field("words", &self.region.len())
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn transfer_preserves_total() {
        let region = SharedRegion::new(16);
        region.write(0, 1000);
        let dom = Arc::new(AtomicDomain::new(region, 4));
        let hs: Vec<_> = (0..8)
            .map(|t| {
                let dom = dom.clone();
                std::thread::spawn(move || {
                    let from = t % 2;
                    let to = 1 - from;
                    for _ in 0..500 {
                        dom.transfer(from, to, 1);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let total = dom.region().read(0) + dom.region().read(1);
        assert_eq!(total, 1000, "atomic transfers must conserve the total");
    }

    #[test]
    fn transfer_fails_on_insufficient_funds() {
        let region = SharedRegion::new(2);
        region.write(0, 5);
        let dom = AtomicDomain::new(region, 2);
        assert!(!dom.transfer(0, 1, 10));
        assert_eq!(dom.region().read(0), 5);
        assert!(dom.transfer(0, 1, 5));
        assert_eq!(dom.region().read(1), 5);
    }

    #[test]
    fn overlapping_blocks_serialize() {
        let region = SharedRegion::new(8);
        let dom = Arc::new(AtomicDomain::new(region, 2));
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let dom = dom.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        dom.atomic(std::slice::from_ref(&(0..1)), |r| {
                            // Non-atomic read-modify-write, protected by the
                            // block.
                            let v = r.read(0);
                            r.write(0, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(dom.region().read(0), 4000);
    }

    #[test]
    fn multi_range_blocks_do_not_deadlock() {
        let region = SharedRegion::new(64);
        let dom = Arc::new(AtomicDomain::new(region, 8));
        let hs: Vec<_> = (0..8)
            .map(|t| {
                let dom = dom.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        // Alternate lock-order pressure: ranges presented in
                        // both orders.
                        let (a, b) = if (t + i) % 2 == 0 { (0, 56) } else { (56, 0) };
                        dom.atomic(&[a..a + 8, b..b + 8], |r| {
                            r.fetch_add(a, 1);
                        });
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let total = dom.region().read(0) + dom.region().read(56);
        assert_eq!(total, 1600);
    }

    #[test]
    fn empty_region_is_usable() {
        let dom = AtomicDomain::new(SharedRegion::new(0), 4);
        let out = dom.atomic(&[], |_| 42);
        assert_eq!(out, 42);
    }
}
