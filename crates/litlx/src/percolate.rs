//! Percolation: prestaging "program instruction blocks and data at the site
//! of the intended computation, to eliminate waiting for remote accesses,
//! which are determined at run time prior to actual block execution" (§3.2,
//! citing the HTMT percolation model).
//!
//! [`PercolateKernel`] processes a sequence of tiles that live in slow
//! memory (DRAM or a remote node). With percolation depth `d`, the kernel
//! keeps up to `d` tile transfers in flight into its unit's scratchpad
//! while computing on the current tile: at depth 0 it degenerates to
//! demand fetching (stall per tile); at modest depths the transfer pipeline
//! hides the tile latency entirely — experiment E4 sweeps `d`.

use htvm_sim::{Cycle, Effect, GAddr, SignalId, SimThread, TaskCtx};

/// Where each tile of a percolation plan lives and how big it is.
#[derive(Debug, Clone)]
pub struct PercolationPlan {
    /// Source of tile `i` (slow memory).
    pub src_base: GAddr,
    /// Bytes per tile.
    pub tile_bytes: u32,
    /// Number of tiles to process.
    pub tiles: u64,
    /// Compute cycles per tile once staged.
    pub compute_per_tile: Cycle,
    /// Prestage depth: tiles in flight beyond the one being computed.
    /// Depth 0 = demand fetch.
    pub depth: u64,
}

impl PercolationPlan {
    /// Address of tile `i`.
    fn tile_addr(&self, i: u64) -> GAddr {
        self.src_base.add(i * self.tile_bytes as u64)
    }
}

/// The percolating kernel task. Signals `done` on completion if provided.
pub struct PercolateKernel {
    plan: PercolationPlan,
    /// Per-tile arrival signal base (one signal id per in-flight slot).
    stage_sig: SignalId,
    issued: u64,
    computed: u64,
    state: State,
    done: Option<SignalId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Fill,
    WaitTile,
    Compute,
    Finish,
}

impl PercolateKernel {
    /// Build a kernel for `plan`; `stage_sig` must be unique to this kernel.
    pub fn new(plan: PercolationPlan, stage_sig: SignalId) -> Self {
        Self {
            plan,
            stage_sig,
            issued: 0,
            computed: 0,
            state: State::Fill,
            done: None,
        }
    }

    /// Also signal `sig` when all tiles are processed.
    pub fn signal_when_done(mut self, sig: SignalId) -> Self {
        self.done = Some(sig);
        self
    }

    /// Issue the load for tile `i`. Percolated transfers are asynchronous:
    /// modelled as a block load performed by a helper "mover" that signals
    /// arrival. We express it as a `Load` from a *separate* tiny task so
    /// the kernel itself never blocks on it; to stay within one task, we
    /// instead issue the load and convert its completion into the stage
    /// signal via the engine's wake — i.e. the kernel blocks only when the
    /// pipeline is empty.
    fn want_issue(&self) -> bool {
        self.issued < self.plan.tiles && self.issued - self.computed <= self.plan.depth
    }
}

impl SimThread for PercolateKernel {
    fn resume(&mut self, _ctx: &mut TaskCtx) -> Effect {
        loop {
            match self.state {
                State::Fill => {
                    if self.want_issue() {
                        let i = self.issued;
                        self.issued += 1;
                        let addr = self.plan.tile_addr(i);
                        let size = self.plan.tile_bytes;
                        let sig = self.stage_sig;
                        // The mover: a TGT-weight helper that performs the
                        // blocking block transfer and signals tile arrival.
                        let mut phase = 0u8;
                        let mover = Box::new(move |_: &mut TaskCtx| match phase {
                            0 => {
                                phase = 1;
                                Effect::Load { addr, size }
                            }
                            1 => {
                                phase = 2;
                                Effect::Signal(sig, 1)
                            }
                            _ => Effect::Done,
                        });
                        return Effect::Spawn {
                            task: mover,
                            place: htvm_sim::Placement::Local,
                            class: htvm_sim::SpawnClass::Tgt,
                        };
                    }
                    if self.computed >= self.plan.tiles {
                        self.state = State::Finish;
                        continue;
                    }
                    self.state = State::WaitTile;
                }
                State::WaitTile => {
                    self.state = State::Compute;
                    return Effect::Wait(self.stage_sig);
                }
                State::Compute => {
                    self.computed += 1;
                    self.state = State::Fill;
                    return Effect::Compute(self.plan.compute_per_tile);
                }
                State::Finish => {
                    if let Some(sig) = self.done.take() {
                        return Effect::Signal(sig, 1);
                    }
                    return Effect::Done;
                }
            }
        }
    }

    fn label(&self) -> &str {
        "percolate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htvm_sim::{Engine, MachineConfig, Placement, SpawnClass};

    fn makespan(depth: u64, tiles: u64, compute: Cycle) -> Cycle {
        let mut cfg = MachineConfig::small();
        // Plenty of hardware threads so movers never starve the kernel.
        cfg.hw_threads_per_unit = 8;
        let mut e = Engine::new(cfg);
        let plan = PercolationPlan {
            src_base: GAddr::dram(0, 0),
            tile_bytes: 4096,
            tiles,
            compute_per_tile: compute,
            depth,
        };
        let k = PercolateKernel::new(plan, SignalId(77));
        e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(k));
        e.run().now
    }

    #[test]
    fn all_tiles_processed() {
        let mut cfg = MachineConfig::small();
        cfg.hw_threads_per_unit = 8;
        let mut e = Engine::new(cfg);
        let plan = PercolationPlan {
            src_base: GAddr::dram(0, 0),
            tile_bytes: 1024,
            tiles: 10,
            compute_per_tile: 50,
            depth: 2,
        };
        let k = PercolateKernel::new(plan, SignalId(5)).signal_when_done(SignalId(6));
        e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(k));
        let s = e.run();
        // Kernel + 10 movers.
        assert_eq!(s.tasks_completed, 11);
        assert_eq!(s.total_accesses(), 10);
    }

    #[test]
    fn deeper_percolation_is_faster() {
        let demand = makespan(0, 32, 100);
        let d2 = makespan(2, 32, 100);
        let d4 = makespan(4, 32, 100);
        assert!(
            d2 < demand,
            "depth 2 ({d2}) must beat demand fetch ({demand})"
        );
        // Extra depth adds only mover bookkeeping once the transfer pipe is
        // saturated: allow 5% noise but no regression toward demand cost.
        assert!(
            (d4 as f64) < d2 as f64 * 1.05,
            "depth 4 ({d4}) ≈ depth 2 ({d2})"
        );
    }

    #[test]
    fn compute_bound_kernel_gains_little() {
        // When compute per tile dwarfs transfer latency, percolation can't
        // help much: the bound is compute either way.
        let demand = makespan(0, 16, 20_000);
        let deep = makespan(4, 16, 20_000);
        let gain = demand as f64 / deep as f64;
        assert!(
            gain < 1.15,
            "compute-bound gain should be small, got {gain:.2}x"
        );
    }

    #[test]
    fn results_do_not_depend_on_depth() {
        // Percolation changes timing only: same accesses, same tiles.
        let count = |depth| {
            let mut cfg = MachineConfig::small();
            cfg.hw_threads_per_unit = 8;
            let mut e = Engine::new(cfg);
            let plan = PercolationPlan {
                src_base: GAddr::dram(0, 0),
                tile_bytes: 2048,
                tiles: 12,
                compute_per_tile: 10,
                depth,
            };
            let k = PercolateKernel::new(plan, SignalId(9));
            e.spawn(Placement::Unit(0, 0), SpawnClass::Sgt, Box::new(k));
            let s = e.run();
            (s.total_accesses(), s.tasks_completed)
        };
        assert_eq!(count(0), count(3));
    }
}
