//! Model-equivalence and linearizability properties for the lock-free
//! scheduling spine (`htvm_core::deque`).
//!
//! The oracle is the vendored mutex-shim (`crossbeam::deque`): same
//! LIFO-owner/FIFO-thief contract, trivially correct under a lock. The
//! sequential properties drive both implementations through identical
//! randomized op sequences and demand *identical* observable results;
//! the concurrent properties give up determinism and instead check the
//! invariants that survive real interleavings — nothing lost, nothing
//! duplicated, FIFO order per consumer, and batch publishes that stay
//! intact across segment boundaries.

use proptest::prelude::*;

use htvm::core::deque::{Injector, Steal, Worker, SEGMENT_CAP};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One sequential deque op, decoded from a byte pair.
#[derive(Debug, Clone, Copy)]
enum DequeOp {
    Push(u64),
    Pop,
    Steal,
}

fn decode_ops(raw: &[(u8, u8)]) -> Vec<DequeOp> {
    let mut next = 0u64;
    raw.iter()
        .map(|&(kind, _)| match kind % 5 {
            // Bias toward pushes so sequences reach interesting depths.
            0..=2 => {
                next += 1;
                DequeOp::Push(next)
            }
            3 => DequeOp::Pop,
            _ => DequeOp::Steal,
        })
        .collect()
}

/// Drain a `Steal` result into an `Option`, retry-looping like the pool
/// does. Sequentially, the lock-free deque never returns `Retry` (there
/// is nobody to lose a race to), but the loop keeps the contract honest.
fn steal_once<T>(mut f: impl FnMut() -> Steal<T>) -> Option<T> {
    loop {
        match f() {
            Steal::Success(v) => return Some(v),
            Steal::Empty => return None,
            Steal::Retry => continue,
        }
    }
}

fn shim_steal_once<T>(mut f: impl FnMut() -> crossbeam::deque::Steal<T>) -> Option<T> {
    loop {
        match f() {
            crossbeam::deque::Steal::Success(v) => return Some(v),
            crossbeam::deque::Steal::Empty => return None,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequential model equivalence: any interleaving of owner pushes,
    /// owner pops and thief steals produces byte-identical results on
    /// the Chase–Lev deque and the mutex-shim oracle.
    #[test]
    fn deque_matches_mutex_oracle(raw in proptest::collection::vec((0u8..5, 0u8..1), 0..300)) {
        let ops = decode_ops(&raw);
        let lf = Worker::new_lifo();
        let lf_thief = lf.stealer();
        let shim = crossbeam::deque::Worker::new_lifo();
        let shim_thief = shim.stealer();
        for (i, op) in ops.iter().enumerate() {
            match *op {
                DequeOp::Push(v) => {
                    lf.push(v);
                    shim.push(v);
                }
                DequeOp::Pop => {
                    prop_assert_eq!(lf.pop(), shim.pop(), "pop diverged at op {}", i);
                }
                DequeOp::Steal => {
                    let a = steal_once(|| lf_thief.steal());
                    let b = shim_steal_once(|| shim_thief.steal());
                    prop_assert_eq!(a, b, "steal diverged at op {}", i);
                }
            }
            prop_assert_eq!(lf.len(), shim.len(), "length diverged at op {}", i);
        }
        // Drain both: the leftovers must agree too.
        loop {
            let (a, b) = (lf.pop(), shim.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Sequential injector equivalence: pushes (single and batched) and
    /// steals observe the exact same FIFO on both implementations.
    #[test]
    fn injector_matches_mutex_oracle(raw in proptest::collection::vec((0u8..6, 1u8..40), 0..120)) {
        let lf = Injector::new();
        let shim = crossbeam::deque::Injector::new();
        let mut next = 0u64;
        for (i, &(kind, n)) in raw.iter().enumerate() {
            match kind % 3 {
                0 => {
                    next += 1;
                    lf.push(next);
                    shim.push(next);
                }
                1 => {
                    // Batch push: the shim has no batch API, so the oracle
                    // sees the same values one at a time — FIFO visibility
                    // must come out identical anyway.
                    let batch: Vec<u64> = (next + 1..=next + n as u64).collect();
                    next += n as u64;
                    for &v in &batch {
                        shim.push(v);
                    }
                    lf.push_batch(batch);
                }
                _ => {
                    let a = steal_once(|| lf.steal());
                    let b = shim_steal_once(|| shim.steal());
                    prop_assert_eq!(a, b, "injector steal diverged at op {}", i);
                }
            }
        }
        loop {
            let (a, b) = (steal_once(|| lf.steal()), shim_steal_once(|| shim.steal()));
            prop_assert_eq!(a, b, "injector drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    /// Concurrent linearizability-lite: an owner interleaving pushes and
    /// pops races two thieves. Every pushed value must be claimed exactly
    /// once (owner or thief), and each thief's haul must arrive in push
    /// order — steals claim monotonically increasing top indices, so a
    /// reordered haul would betray a torn claim.
    #[test]
    fn concurrent_steals_lose_nothing_and_keep_fifo(
        n in 64u64..512,
        pop_every in 2u64..7,
    ) {
        let w = Worker::new_lifo();
        let done = Arc::new(AtomicU64::new(0));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let s = w.stealer();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while done.load(Ordering::Acquire) == 0 {
                        if let Steal::Success(v) = s.steal() {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    // Final sweep after the owner stops.
                    while let Steal::Success(v) = s.steal() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut owner_got = Vec::new();
        for i in 1..=n {
            w.push(i);
            if i % pop_every == 0 {
                if let Some(v) = w.pop() {
                    owner_got.push(v);
                }
            }
        }
        while let Some(v) = w.pop() {
            owner_got.push(v);
        }
        done.store(1, Ordering::Release);
        let hauls: Vec<Vec<u64>> = thieves.into_iter().map(|h| h.join().unwrap()).collect();
        for haul in &hauls {
            prop_assert!(
                haul.windows(2).all(|p| p[0] < p[1]),
                "a thief observed out-of-order steals: {:?}",
                haul
            );
        }
        let mut all: Vec<u64> = owner_got;
        all.extend(hauls.into_iter().flatten());
        all.sort_unstable();
        prop_assert_eq!(all, (1..=n).collect::<Vec<_>>());
    }

    /// Segment-boundary batches under concurrent stealers: publishing
    /// batches sized exactly at/around the segment capacity (k−1, k, k+1,
    /// and 2k+1 for a double crossing) must never drop, duplicate, or
    /// reorder FIFO-visible jobs — each concurrent consumer's haul stays
    /// strictly increasing and the union is exactly what was pushed.
    #[test]
    fn injector_segment_boundary_batches_stay_fifo(
        delta in 0usize..4,
        rounds in 2usize..6,
    ) {
        let k = SEGMENT_CAP;
        let batch_len = [k - 1, k, k + 1, 2 * k + 1][delta];
        let inj = Arc::new(Injector::new());
        let total = (rounds * batch_len) as u64;
        let done = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let inj = inj.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while done.load(Ordering::Acquire) == 0 {
                        if let Steal::Success(v) = inj.steal() {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    while let Steal::Success(v) = inj.steal() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut next = 0u64;
        for _ in 0..rounds {
            let batch: Vec<u64> = (next..next + batch_len as u64).collect();
            next += batch_len as u64;
            inj.push_batch(batch);
        }
        done.store(1, Ordering::Release);
        let hauls: Vec<Vec<u64>> = consumers.into_iter().map(|h| h.join().unwrap()).collect();
        for haul in &hauls {
            prop_assert!(
                haul.windows(2).all(|p| p[0] < p[1]),
                "consumer saw FIFO violation near segment boundary (batch {}): {:?}",
                batch_len,
                haul
            );
        }
        let mut all: Vec<u64> = hauls.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..total).collect::<Vec<_>>());
    }
}

/// Deterministic (non-prop) regression: `steal_batch_and_pop` across a
/// segment boundary claims a contiguous FIFO run — first job returned,
/// the carried run landing in the thief's deque, no holes.
#[test]
fn batch_steal_run_is_contiguous_fifo() {
    let inj = Injector::new();
    let n = SEGMENT_CAP as u64 + 5;
    inj.push_batch((0..n).collect());
    let dest = Worker::new_lifo();
    let first = steal_once(|| inj.steal_batch_and_pop(&dest)).expect("non-empty");
    assert_eq!(first, 0, "batch steal pops the FIFO head");
    let mut carried = Vec::new();
    while let Some(v) = dest.pop() {
        carried.push(v);
    }
    carried.sort_unstable();
    assert_eq!(
        carried,
        (1..=carried.len() as u64).collect::<Vec<_>>(),
        "the carried run is the contiguous FIFO prefix after the popped head"
    );
    // Everything else is still in the injector, still in order.
    let mut rest = Vec::new();
    while let Some(v) = steal_once(|| inj.steal()) {
        rest.push(v);
    }
    assert_eq!(rest, (carried.len() as u64 + 1..n).collect::<Vec<_>>());
}
