//! Differential tests for the LITL-X kernel compiler: naive fan-out,
//! interpreted SSP, and compiled SSP must agree on every lowerable nest.
//!
//! ## Where bitwise equality holds — and where it cannot
//!
//! * **Interpreted SSP vs compiled SSP** is compared *bitwise on any
//!   data, fractional included*: the compiler preserves the tape's
//!   evaluation order exactly (single in-order accumulator for the
//!   dot-accum shape, no reassociation — see `litlx::lang::compile`), and
//!   SSP group execution order is the sequential lexicographic order, so
//!   the two paths perform the same float operations in the same order.
//! * **Naive vs SSP** cannot be compared with a *parallel* naive run at
//!   all: the generated nests carry genuine dependences (offset stores),
//!   which the flat fan-out races on by design — its output is
//!   scheduler-dependent. The naive reference is therefore the
//!   single-worker naive executor, which claims and executes chunks in
//!   order (exactly sequential). Even order-independent `+=` programs
//!   would additionally need integer-valued data for a parallel-naive
//!   comparison: the naive fan-out commits its CAS accumulates in
//!   scheduler-dependent order, and float addition does not reassociate.
//!   The generator emits integer-valued programs anyway (every
//!   intermediate a small exactly-representable integer), so all
//!   comparisons in this suite are bitwise — no approximate tolerance
//!   anywhere.
//!
//! The 256-case sweep is an explicit seed loop rather than a `proptest!`
//! block: the vendored proptest honors `PROPTEST_CASES` from the
//! environment (CI pins it to 64), which would silently shrink a
//! `with_cases(256)` config below the acceptance bar.

use htvm_core::Topology;
use litlx::lang::{parse, Interp, KernelMode, LoopStrategy, Program, RunOutput};

/// Deterministic per-seed generator state (same scheme as
/// `tests/ssp_native.rs`).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random affine nest over integer-valued data: `t` is stored through
/// mixed-radix strides plus small offsets (which create genuine carried
/// dependences and unprovable accesses), `s` is read-only. All values
/// stay small integers, so f64 arithmetic is exact in any order.
fn gen_program(seed: u64) -> String {
    let mut r = Lcg(seed.wrapping_add(0x9e3779b97f4a7c15));
    let depth = 1 + r.below(3) as usize;
    let trips: Vec<u64> = (0..depth).map(|_| 2 + r.below(3)).collect();
    let points: u64 = trips.iter().product();
    let strides: Vec<u64> = (0..depth)
        .map(|l| trips[l + 1..].iter().product::<u64>())
        .collect();
    let pad = 4u64;
    let t_len = points + pad;
    let s_len = points + pad;
    let vars = ["v0", "v1", "v2"];
    let mr = |r: &mut Lcg| -> String {
        let off = r.below(pad);
        let terms: Vec<String> = (0..depth)
            .map(|l| format!("{} * {}", vars[l], strides[l]))
            .collect();
        format!("{} + {off}", terms.join(" + "))
    };
    let expr = |r: &mut Lcg| -> String {
        match r.below(5) {
            0 => format!("{}", 1 + r.below(4)),
            1 => vars[r.below(depth as u64) as usize].to_string(),
            2 => format!("s[{}]", mr(r)),
            3 => format!("t[{}]", mr(r)),
            _ => format!(
                "{} * {} + {}",
                vars[r.below(depth as u64) as usize],
                1 + r.below(3),
                1 + r.below(4)
            ),
        }
    };
    let stores = 1 + r.below(2);
    let mut body = String::new();
    for _ in 0..stores {
        let opch = if r.below(3) == 0 { "+=" } else { "=" };
        let lhs = mr(&mut r);
        let e1 = expr(&mut r);
        let e2 = expr(&mut r);
        body.push_str(&format!("t[{lhs}] {opch} {e1} + {e2}; "));
    }
    let mut nest = body;
    for l in (0..depth).rev() {
        let kw = if l == 0 || r.below(2) == 0 {
            "forall"
        } else {
            "for"
        };
        nest = format!("{kw} {} in 0..{} {{ {nest} }}", vars[l], trips[l]);
    }
    format!(
        "fn main() {{
            let s = array({s_len});
            let t = array({t_len});
            for q in 0..{s_len} {{ s[q] = q % 5 + 1; }}
            for q in 0..{t_len} {{ t[q] = q % 3; }}
            {nest}
            for q in 0..{t_len} {{ print(t[q]); }}
        }}"
    )
}

fn run_ssp(p: &Program, mode: KernelMode) -> RunOutput {
    Interp::with_topology(Topology::domains(2, 2))
        .with_strategy(LoopStrategy::Ssp)
        .with_kernel_mode(mode)
        .run(p)
        .expect("ssp run")
}

/// The acceptance sweep: 256 random affine nests through all three
/// execution paths, compared bitwise (integer-valued data — see the
/// module docs for why that makes naive comparable at all).
#[test]
fn differential_naive_interp_compiled_256_cases() {
    for seed in 0..256u64 {
        let src = gen_program(seed);
        let p = parse(&src)
            .unwrap_or_else(|e| panic!("seed {seed}: generated program failed to parse: {e}"));
        let naive = Interp::new(1).run(&p).expect("naive run");
        let interp = run_ssp(&p, KernelMode::Interpreted);
        let compiled = run_ssp(&p, KernelMode::Compiled);
        for (name, out) in [("interp", &interp), ("compiled", &compiled)] {
            assert_eq!(
                out.ssp_bailouts, 0,
                "seed {seed} ({name}): generator left the lowerable fragment:\n{src}"
            );
            assert_eq!(
                out.ssp_foralls, 1,
                "seed {seed} ({name}): nest did not take the SSP path:\n{src}"
            );
        }
        assert_eq!(interp.ssp_compiled, 0, "seed {seed}");
        assert_eq!(
            compiled.ssp_compiled, compiled.ssp_foralls,
            "seed {seed}: compiled mode must run the compiled kernel:\n{src}"
        );
        assert_eq!(
            interp.printed, naive.printed,
            "seed {seed}: interpreted SSP diverged from naive:\n{src}"
        );
        assert_eq!(
            compiled.printed, interp.printed,
            "seed {seed}: compiled SSP diverged from interpreted SSP:\n{src}"
        );
    }
}

/// Fractional data: naive ordering is not comparable, but interpreted vs
/// compiled SSP must still match bitwise — including through a dot-accum
/// reduction, the shape where an unsound compiler would reassociate.
#[test]
fn fractional_matmul_interp_vs_compiled_bitwise() {
    let src = "fn main() {
        let n = 10;
        let a = array(n * n); let b = array(n * n); let c = array(n * n);
        for q in 0..n * n { a[q] = q / 7 + 1 / 3; b[q] = q / 11 - 1 / 9; }
        forall i in 0..n { forall j in 0..n { for k in 0..n {
            c[i * n + j] += a[i * n + k] * b[k * n + j];
        } } }
        for q in 0..n * n { print(c[q]); } }";
    let p = parse(src).unwrap();
    let interp = run_ssp(&p, KernelMode::Interpreted);
    let compiled = run_ssp(&p, KernelMode::Compiled);
    assert_eq!(interp.ssp_bailouts, 0);
    assert_eq!(
        compiled.printed, interp.printed,
        "dot-accum must not reassociate"
    );
    assert!(compiled.ssp_compiled >= 1);
}

/// Targeted case for the fma-map shape (elementwise product, with and
/// without a hoisted addend) on fractional data.
#[test]
fn fractional_elementwise_interp_vs_compiled_bitwise() {
    for body in ["d[i] = a[i] * b[i];", "d[i] = a[i] * b[i] + k;"] {
        let src = format!(
            "fn main() {{
                let n = 64; let k = 1 / 3;
                let a = array(n); let b = array(n); let d = array(n);
                for q in 0..n {{ a[q] = q / 7; b[q] = q / 13 - 2; }}
                forall i in 0..n {{ {body} }}
                for q in 0..n {{ print(d[q]); }} }}"
        );
        let p = parse(&src).unwrap();
        let interp = run_ssp(&p, KernelMode::Interpreted);
        let compiled = run_ssp(&p, KernelMode::Compiled);
        assert_eq!(interp.ssp_bailouts, 0, "{body}");
        assert_eq!(compiled.printed, interp.printed, "{body}");
        assert!(compiled.ssp_compiled >= 1, "{body}");
    }
}

/// Targeted case for the tape fallback: a store that aliases a loaded
/// array keeps the nest off the monomorphized shapes, and a distance-1
/// recurrence additionally forces the wavefront. Output must still be
/// bitwise-identical across modes.
#[test]
fn recurrence_on_the_tape_interp_vs_compiled_bitwise() {
    let src = "fn main() {
        let n = 48;
        let a = array(n + 1);
        a[0] = 1 / 3;
        forall i in 0..n { a[i + 1] = a[i] * 1 / 2 + i; }
        for q in 0..n + 1 { print(a[q]); } }";
    let p = parse(src).unwrap();
    let interp = run_ssp(&p, KernelMode::Interpreted);
    let compiled = run_ssp(&p, KernelMode::Compiled);
    assert_eq!(interp.ssp_bailouts, 0);
    assert_eq!(interp.ssp_wavefronts, 1, "distance-1 dep must wavefront");
    assert_eq!(compiled.ssp_wavefronts, 1);
    assert_eq!(compiled.printed, interp.printed);
}

/// Bounds-hoist bail-out, benign case: an access the prover cannot bound
/// (`t[v0 * 3 + off]` with the offset pushing past the proven box) runs
/// on the checked fallback and still matches the interpreter when every
/// runtime index is in bounds.
#[test]
fn unproven_access_in_bounds_matches_across_modes() {
    let src = "fn main() {
        let n = 20;
        let t = array(n + 3);
        for q in 0..n + 3 { t[q] = q % 4; }
        forall i in 0..n { t[i + 3] += i * 2; }
        for q in 0..n + 3 { print(t[q]); } }";
    let p = parse(src).unwrap();
    let naive = Interp::new(1).run(&p).expect("sequential");
    let interp = run_ssp(&p, KernelMode::Interpreted);
    let compiled = run_ssp(&p, KernelMode::Compiled);
    assert_eq!(interp.ssp_bailouts, 0);
    assert_eq!(interp.printed, naive.printed);
    assert_eq!(compiled.printed, interp.printed);
}

/// Bounds-hoist bail-out, faulting case: when an unproven access really
/// is out of bounds at runtime, both modes fail with the same
/// lazily-formatted message (the compiled path must not have traded the
/// check away, and must not pay for `format!` on the in-bounds points).
#[test]
fn unproven_access_out_of_bounds_errors_identically() {
    let src = "fn main() {
        let n = 10;
        let t = array(n);
        forall i in 0..n { t[i + 3] = 1; }
        print(t[0]); }";
    let p = parse(src).unwrap();
    let e_interp = Interp::with_topology(Topology::flat(2))
        .with_strategy(LoopStrategy::Ssp)
        .with_kernel_mode(KernelMode::Interpreted)
        .run(&p)
        .expect_err("index 12 exceeds length 10");
    let e_compiled = Interp::with_topology(Topology::flat(2))
        .with_strategy(LoopStrategy::Ssp)
        .with_kernel_mode(KernelMode::Compiled)
        .run(&p)
        .expect_err("index 12 exceeds length 10");
    assert!(
        e_interp.contains("out of bounds"),
        "unexpected error: {e_interp}"
    );
    // The first fault the wave reports depends on group scheduling, so
    // compare the shape of the message, not the exact index.
    assert!(
        e_compiled.contains("out of bounds"),
        "unexpected error: {e_compiled}"
    );
}
