//! Shape assertions over every experiment: the reproduction's contract is
//! not absolute numbers (our substrate is a simulator, not the authors'
//! testbed) but *who wins, by roughly what factor, and where crossovers
//! fall*. Each test runs the experiment at Quick scale and checks exactly
//! those properties. EXPERIMENTS.md records the full-scale tables.

use htvm_bench::experiments::{self, Scale};

/// Tests that assert on *wall-clock* ratios must not time-share the host's
/// few cores with each other; they serialize on this lock. (Simulator-time
/// experiments are deterministic and run freely in parallel.)
static WALL_CLOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn wall_clock_guard() -> std::sync::MutexGuard<'static, ()> {
    WALL_CLOCK.lock().unwrap_or_else(|e| e.into_inner())
}

mod common;
use common::multicore;

fn col(t: &htvm_bench::Table, name: &str) -> Vec<f64> {
    let v = t.column_f64(name);
    assert!(
        !v.is_empty(),
        "column {name} missing or empty in {}",
        t.title
    );
    v
}

#[test]
fn e1_more_hw_threads_hide_more_latency() {
    let t = experiments::e1_latency_tolerance(Scale::Quick);
    // At the highest latency scale, throughput must grow with hw threads.
    let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[1] == "8x").collect();
    assert!(rows.len() >= 2);
    let first: f64 = rows.first().unwrap()[2].parse().unwrap();
    let last: f64 = rows.last().unwrap()[2].parse().unwrap();
    assert!(
        last > first * 2.0,
        "8 hw threads should at least double throughput at 8x latency: {first} -> {last}"
    );
    // In-stream switching must beat OS-weight switching everywhere.
    for r in &t.rows {
        let instream: f64 = r[2].parse().unwrap();
        let os: f64 = r[3].parse().unwrap();
        assert!(
            instream >= os * 0.99,
            "in-stream switch must not lose to OS switch: {r:?}"
        );
    }
}

#[test]
fn e2_parcel_wins_beyond_crossover() {
    let t = experiments::e2_parcels(Scale::Quick);
    // The largest block must be won by the parcel, by a wide margin over
    // per-element remote loads.
    let last = t.rows.last().unwrap();
    assert_eq!(last[4], "parcel", "large blocks: parcel must win: {last:?}");
    let loads: f64 = last[1].parse().unwrap();
    let parcel: f64 = last[3].parse().unwrap();
    assert!(parcel * 4.0 < loads, "parcel {parcel} vs loads {loads}");
}

#[test]
fn e3_futures_do_not_lose_to_barriers() {
    let _wall = wall_clock_guard();
    let t = experiments::e3_futures(Scale::Quick);
    let speedup: f64 = t.rows[1][2].parse().unwrap();
    // Wall-clock on a shared machine: demand only "futures are at least
    // roughly competitive, usually better".
    assert!(
        speedup > 0.8,
        "futures pipeline collapsed vs barrier: {speedup}"
    );
}

#[test]
fn e4_percolation_beats_demand_fetch() {
    let t = experiments::e4_percolation(Scale::Quick);
    let speedups = col(&t, "speedup_vs_demand");
    assert!(
        speedups.last().unwrap() > &1.2,
        "deep percolation must beat demand fetch: {speedups:?}"
    );
    // Accesses identical across depths (timing-only optimization).
    let acc = col(&t, "accesses");
    assert!(acc.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn e5_grain_cost_ordering() {
    let t = experiments::e5_spawn_costs(Scale::Quick);
    let costs = col(&t, "cycles/spawn");
    assert!(
        costs[0] < costs[1] && costs[1] < costs[2],
        "TGT < SGT < LGT: {costs:?}"
    );
}

/// The idle-protocol acceptance claim, measured: a parked pool is silent
/// (no periodic self-wakes, no spurious wakes), and a cold spawn still
/// reaches execution (latency is finite and positive).
#[test]
fn e5b_parked_pool_is_silent_and_wakes_on_spawn() {
    let _wall = wall_clock_guard();
    let t = experiments::e5b_native_spawn(Scale::Quick);
    assert_eq!(t.rows.len(), 2, "flat + grouped rows");
    for r in &t.rows {
        let p50: f64 = r[1].parse().unwrap();
        let reparks_per_s: f64 = r[5].parse().unwrap();
        let idle_wakes: u64 = r[6].parse().unwrap();
        assert!(p50 > 0.0, "spawn→exec latency must be measured: {r:?}");
        assert_eq!(
            reparks_per_s, 0.0,
            "idle pool must not re-park (self-wake): {r:?}"
        );
        assert_eq!(idle_wakes, 0, "idle pool must not wake anyone: {r:?}");
        // Every cold spawn woke somebody: wakes were recorded.
        let targeted: u64 = r[3].parse().unwrap();
        let escalated: u64 = r[4].parse().unwrap();
        assert!(targeted + escalated > 0, "cold spawns must wake: {r:?}");
    }
}

/// The scheduling-spine acceptance claim, measured: the lock-free deque
/// beats the mutex shim on owner push/pop and on thief steals, and the
/// batched injector publish beats per-job lock round-trips.
#[test]
fn e5c_lock_free_spine_beats_mutex_shim() {
    let _wall = wall_clock_guard();
    // Structure is asserted on every attempt; the speedup claims are
    // wall-clock on a shared host, so best-of-3.
    let mut last = String::new();
    for attempt in 0..3 {
        let t = experiments::e5c_queue_ops(Scale::Quick);
        assert_eq!(t.rows.len(), 6, "push+pop, 3 steal rows, 2 batch rows");
        let speedups = col(&t, "speedup");
        for (r, s) in t.rows.iter().zip(&speedups) {
            assert!(*s > 0.0, "speedup must be measured: {r:?}");
        }
        // push+pop (row 0) and the three steal rows (1..=3) are the
        // acceptance surface; the batch rows ride along.
        let ok = speedups[0] > 1.0 && speedups[1..=3].iter().all(|&s| s > 1.0);
        if ok {
            return;
        }
        last = format!("{speedups:?}");
        eprintln!("e5c attempt {attempt}: speedups {last}");
    }
    panic!("lock-free spine never beat the mutex shim: {last}");
}

#[test]
fn e6_dynamic_beats_static_under_skew() {
    let t = experiments::e6_loop_sched(Scale::Quick);
    let get = |dist: &str, policy: &str| -> f64 {
        t.cell("makespan", |r| r[0] == dist && r[1] == policy)
            .unwrap_or_else(|| panic!("row {dist}/{policy}"))
            .parse()
            .unwrap()
    };
    // GSS's first chunk is n/p — identical to static block's first block —
    // so on *decreasing* costs guided can only tie static (the classical
    // GSS weakness that TSS/FSS address); it wins on *increasing* costs,
    // where its shrinking chunks spread the expensive tail.
    assert!(get("increasing", "guided") < get("increasing", "static-block"));
    assert!(get("decreasing", "guided") <= get("decreasing", "static-block"));
    assert!(get("decreasing", "trapezoid") < get("decreasing", "static-block"));
    assert!(get("decreasing", "self-sched(1)") < get("decreasing", "static-block"));
    assert!(get("bimodal", "factoring") <= get("bimodal", "static-block"));
    // On uniform costs static is fine (within 5%).
    let su = get("uniform", "static-block");
    let gu = get("uniform", "guided");
    assert!(su <= gu * 1.05, "uniform: static {su} vs guided {gu}");
}

#[test]
fn e7_ssp_best_level_beats_innermost_for_matmul() {
    let t = experiments::e7_ssp(Scale::Quick);
    let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "matmul-like").collect();
    let inner = rows.iter().find(|r| r[1] == "2").expect("innermost row");
    let best = rows.iter().find(|r| r[7] == "*").expect("starred best row");
    assert_ne!(best[1], "2", "best level must not be the innermost");
    let ci: f64 = inner[5].parse().unwrap();
    let cb: f64 = best[5].parse().unwrap();
    assert!(
        cb * 1.5 < ci,
        "SSP best {cb} must beat innermost {ci} by >1.5x"
    );
}

#[test]
fn e8_threading_scales_then_saturates() {
    let t = experiments::e8_ssp_mt(Scale::Quick);
    let rows: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "matmul-like").collect();
    let s1: f64 = rows.first().unwrap()[4].parse().unwrap();
    let s_last: f64 = rows.last().unwrap()[4].parse().unwrap();
    assert!(
        s_last > s1 * 2.0,
        "threads must speed SSP up: {s1} -> {s_last}"
    );
    // Wavefront rows scale worse than parallel rows at the same T.
    let wf: Vec<&Vec<String>> = t
        .rows
        .iter()
        .filter(|r| r[0].contains("wavefront"))
        .collect();
    let wf_last: f64 = wf.last().unwrap()[4].parse().unwrap();
    assert!(
        wf_last < s_last,
        "wavefront speedup {wf_last} must trail parallel {s_last}"
    );
}

#[test]
fn e9_migration_beats_none_under_skew() {
    let t = experiments::e9_load_balance(Scale::Quick);
    let get = |workload: &str, policy: &str| -> f64 {
        t.cell("makespan", |r| r[0] == workload && r[1] == policy)
            .unwrap()
            .parse()
            .unwrap()
    };
    for wl in ["skewed", "skew+phase-shift"] {
        let none = get(wl, "none");
        for pol in ["sender-initiated", "receiver-initiated", "work-stealing"] {
            assert!(get(wl, pol) < none, "{pol} must beat no-migration on {wl}");
        }
    }
}

#[test]
fn e10_adaptation_cuts_remote_fraction() {
    let t = experiments::e10_locality(Scale::Quick);
    let get = |trace: &str, policy: &str, col: &str| -> f64 {
        t.cell(col, |r| r[0] == trace && r[1] == policy)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(
        get("producer-consumer", "migrate", "cycles")
            < get("producer-consumer", "fixed-home", "cycles")
    );
    assert!(get("read-mostly", "replicate", "cycles") < get("read-mostly", "fixed-home", "cycles"));
    assert!(
        get("producer-consumer", "migrate", "remote_frac")
            < get("producer-consumer", "fixed-home", "remote_frac") / 2.0
    );
}

#[test]
fn e11_adaptive_tracks_best_fixed() {
    let t = experiments::e11_latency_adapt(Scale::Quick);
    let utils = col(&t, "mean_utilization");
    let adaptive = *utils.last().unwrap();
    let best_other = utils[..utils.len() - 1].iter().cloned().fold(0.0, f64::max);
    assert!(
        adaptive > best_other * 0.8,
        "adaptive {adaptive} must be near the best non-adaptive strategy {best_other}"
    );
    // Adaptivity must beat both fixed extremes: too few threads starve the
    // pipeline, too many thrash the shared cache and the DRAM channels.
    let by_name = |n: &str| -> f64 {
        t.cell("mean_utilization", |r| r[0] == n)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(adaptive > by_name("fixed(1)"), "must beat starved fixed(1)");
    assert!(
        adaptive > by_name("fixed(16)"),
        "must beat thrashing fixed(16)"
    );
}

#[test]
fn e12_hints_cut_search_cost() {
    let t = experiments::e12_hints(Scale::Quick);
    let get = |wl: &str, strat: &str, col: &str| -> f64 {
        t.cell(col, |r| r[0] == wl && r[1] == strat)
            .unwrap()
            .parse()
            .unwrap()
    };
    for wl in ["decreasing", "bimodal"] {
        assert!(get(wl, "hinted", "trials") < get(wl, "exhaustive", "trials"));
        assert!(get(wl, "hinted", "search_cost") < get(wl, "exhaustive", "search_cost"));
        // Hinted winner within 10% of exhaustive winner.
        assert!(
            get(wl, "hinted", "final_makespan") <= get(wl, "exhaustive", "final_makespan") * 1.10
        );
    }
}

#[test]
fn e13_overhead_shrinks_with_period() {
    let t = experiments::e13_monitor(Scale::Quick);
    let fracs = col(&t, "overhead_frac");
    assert!(
        fracs.windows(2).all(|w| w[0] >= w[1]),
        "overhead must fall as the period grows: {fracs:?}"
    );
}

#[test]
fn e14_parallel_matches_and_speeds_up() {
    let _wall = wall_clock_guard();
    // Wall-clock on a small shared host is noisy even under the guard —
    // cargo runs *other test binaries* concurrently. Two claims are
    // asserted, best of three attempts:
    //  (1) the robust contrast: hierarchical beats the flat mapping at
    //      equal worker count by a wide margin (the paper's overhead
    //      argument; measured 5–8× on idle hosts);
    //  (2) hierarchical is at least at parity with sequential.
    let mut best_contrast = 0.0f64;
    let mut best_speedup = 0.0f64;
    for attempt in 0..3 {
        let t = experiments::e14_neocortex(Scale::Quick);
        // All rows must agree on spikes (asserted inside too).
        let spikes: Vec<f64> = col(&t, "spikes");
        assert!(spikes.windows(2).all(|w| w[0] == w[1]));
        let hier: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "hierarchical").collect();
        let flat: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0] == "flat").collect();
        let hier_rate: f64 = hier.last().unwrap()[2].parse().unwrap();
        let flat_rate: f64 = flat.last().unwrap()[2].parse().unwrap();
        let sp: f64 = hier.last().unwrap()[3].parse().unwrap();
        best_contrast = best_contrast.max(hier_rate / flat_rate.max(1e-9));
        best_speedup = best_speedup.max(sp);
        if best_contrast > 2.5 && (best_speedup > 1.0 || !multicore()) {
            return;
        }
        eprintln!(
            "e14 attempt {attempt}: speedup {sp}, hier/flat {:.2}",
            hier_rate / flat_rate
        );
    }
    assert!(
        best_contrast > 2.5,
        "hierarchical/flat contrast {best_contrast} too small"
    );
    assert!(
        best_speedup > 1.0 || !multicore(),
        "hierarchical speedup {best_speedup} below sequential parity"
    );
}

#[test]
fn e15_md_parallel_speedup() {
    let _wall = wall_clock_guard();
    // Best of three: see e14.
    let mut best = 0.0f64;
    for attempt in 0..3 {
        let t = experiments::e15_md(Scale::Quick);
        // Potentials agree across all rows (bit-faithful parallelization).
        let pots = col(&t, "potential");
        for p in &pots {
            assert!((p - pots[0]).abs() < 1e-6 * pots[0].abs());
        }
        let fine: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[0].contains("fine")).collect();
        let sp: f64 = fine.last().unwrap()[3].parse().unwrap();
        best = best.max(sp);
        if best > 1.2 || !multicore() {
            return;
        }
        eprintln!("e15 attempt {attempt}: speedup {sp}");
    }
    panic!("fine-grain MD speedup {best} too small across 3 attempts");
}

#[test]
fn e17_grouped_topology_cuts_remote_steal_ratio() {
    let _wall = wall_clock_guard();
    let ratio = |t: &htvm_bench::Table, workload: &str, topo: &str| -> f64 {
        t.cell("remote_ratio", |r| r[0] == workload && r[1] == topo)
            .unwrap_or_else(|| panic!("row {workload}/{topo}"))
            .parse()
            .unwrap()
    };
    // Structure is always asserted; the steal-preference claim observes
    // real parallel scheduling, so it is multicore-gated and best-of-3.
    let mut last = String::new();
    for attempt in 0..3 {
        let t = experiments::e17_domains(Scale::Quick);
        for workload in ["neocortex", "md"] {
            // Same job count on every topology (grouping is a placement
            // policy, not a decomposition change).
            let sgts: Vec<f64> = t
                .rows
                .iter()
                .filter(|r| r[0] == workload)
                .map(|r| r[3].parse().unwrap())
                .collect();
            assert_eq!(sgts.len(), 2, "{workload}: flat + 2-dom rows expected");
            assert!(
                sgts.windows(2).all(|w| w[0] == w[1]),
                "{workload}: {sgts:?}"
            );
        }
        if !multicore() {
            return;
        }
        let ok = ["neocortex", "md"].iter().all(|w| {
            // Flat's ratio is 1 whenever it stole at all; the grouped run
            // must come in under it.
            ratio(&t, w, "flat") > 0.0 && ratio(&t, w, "2-dom") < ratio(&t, w, "flat")
        });
        if ok {
            return;
        }
        last = ["neocortex", "md"]
            .iter()
            .map(|w| {
                format!(
                    "{w}: flat {} vs 2-dom {}",
                    ratio(&t, w, "flat"),
                    ratio(&t, w, "2-dom")
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        eprintln!("e17 attempt {attempt}: {last}");
    }
    panic!("2-domain topology never cut the remote-steal ratio: {last}");
}

#[test]
fn e16_litlx_results_match_native() {
    let _wall = wall_clock_guard();
    let t = experiments::e16_litlx(Scale::Quick);
    for r in &t.rows {
        assert_eq!(r[4], "true", "kernel {} mismatch", r[0]);
    }
}

#[test]
fn e18_ssp_native_is_correct_and_places_groups() {
    let _wall = wall_clock_guard();
    let t = experiments::e18_ssp_native(Scale::Quick);
    let cell = |workload: &str, path: &str, topo: &str, col: &str| -> String {
        t.cell(col, |r| r[0] == workload && r[1] == path && r[2] == topo)
            .unwrap_or_else(|| panic!("missing row {workload}/{path}/{topo}"))
            .to_string()
    };
    for topo in ["flat", "2-dom"] {
        // Correctness first: both SSP kernel modes compute what the naive
        // path computes (matmul), and the wavefront path reproduces the
        // exact sequential recurrence where naive is a race.
        for ssp in ["ssp-interp", "ssp-comp"] {
            assert_eq!(
                cell("litlx-matmul", ssp, topo, "check"),
                cell("litlx-matmul", "naive", topo, "check"),
                "{topo}: {ssp} matmul diverged"
            );
            let n = 48u64; // Quick-scale scan length
            let expected = (3 + n * (n - 1) / 2).to_string();
            assert_eq!(cell("litlx-scan", ssp, topo, "check"), expected);
            assert_eq!(cell("litlx-scan", ssp, topo, "wavefronts"), "1");
            // The pipelined paths actually pipelined.
            assert!(
                cell("litlx-matmul", ssp, topo, "pipelined")
                    .parse::<u64>()
                    .unwrap()
                    >= 1
            );
        }
        assert_eq!(
            cell("md-force", "ssp", topo, "check"),
            cell("md-force", "naive", topo, "check"),
            "{topo}: ssp md potential diverged"
        );
        assert!(
            cell("md-force", "ssp", topo, "pipelined")
                .parse::<u64>()
                .unwrap()
                >= 2
        );
        // And every SSP row records domain placements.
        for (workload, path) in [
            ("litlx-matmul", "ssp-interp"),
            ("litlx-matmul", "ssp-comp"),
            ("litlx-scan", "ssp-interp"),
            ("litlx-scan", "ssp-comp"),
            ("md-force", "ssp"),
        ] {
            let spawns = cell(workload, path, topo, "dom_spawns");
            assert!(
                spawns.split('/').any(|d| d.parse::<u64>().unwrap() > 0),
                "{workload}/{path}/{topo}: no domain spawns recorded: {spawns}"
            );
        }
    }
    // On a grouped topology the round-robin placement must hit both
    // domains (single-CPU safe: placement is decided at spawn time).
    let spawns = cell("md-force", "ssp", "2-dom", "dom_spawns");
    let parts: Vec<u64> = spawns.split('/').map(|d| d.parse().unwrap()).collect();
    assert_eq!(parts.len(), 2);
    assert!(
        parts.iter().all(|&d| d > 0),
        "placement skipped a domain: {spawns}"
    );
}

#[test]
fn e19_serving_conserves_requests_and_orders_percentiles() {
    let _wall = wall_clock_guard();
    let t = experiments::e19_serving(Scale::Quick);
    // ≥3 rates × 3 tenants, every row's ledger balanced.
    assert!(t.rows.len() >= 9, "expected ≥9 rows, got {}", t.rows.len());
    let idx = |name: &str| {
        t.col(name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let (offered, refused, completed, cancelled, shed) = (
        idx("offered"),
        idx("refused"),
        idx("completed"),
        idx("cancelled"),
        idx("shed"),
    );
    let (p50, p99, p999, check) = (idx("p50_us"), idx("p99_us"), idx("p999_us"), idx("check"));
    let mut rates = std::collections::BTreeSet::new();
    let mut tenants = std::collections::BTreeSet::new();
    for r in &t.rows {
        rates.insert(r[0].clone());
        tenants.insert(r[1].clone());
        assert_eq!(r[check], "ok", "conservation ledger leaked: {r:?}");
        let n = |i: usize| r[i].parse::<u64>().unwrap();
        assert_eq!(
            n(offered),
            n(refused) + n(completed) + n(cancelled) + n(shed),
            "offered must split exactly across the outcome buckets: {r:?}"
        );
        assert!(n(completed) > 0, "a tenant completed nothing: {r:?}");
        assert!(
            n(p50) <= n(p99) && n(p99) <= n(p999),
            "percentiles out of order: {r:?}"
        );
    }
    assert!(rates.len() >= 3, "need ≥3 arrival rates, got {rates:?}");
    assert_eq!(tenants.len(), 3, "need 3 tenants, got {tenants:?}");
}

#[test]
fn e21_chaos_conserves_and_heals_under_both_configs() {
    let _wall = wall_clock_guard();
    let t = experiments::e21_chaos(Scale::Quick);
    let idx = |name: &str| {
        t.col(name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let (config, completed, failed, retried) = (
        idx("config"),
        idx("completed"),
        idx("failed"),
        idx("retried"),
    );
    let (deaths, respawns, restarts, check) = (
        idx("deaths"),
        idx("respawns"),
        idx("restarts"),
        idx("check"),
    );
    let (p50, p99) = (idx("p50_us"), idx("p99_us"));
    assert_eq!(t.rows.len(), 2, "one clean row, one faulted row: {t:?}");
    for r in &t.rows {
        // The check column already folds in zero hangs, ledger
        // conservation, and deaths == respawns.
        assert_eq!(r[check], "ok", "chaos ledger leaked: {r:?}");
        let n = |i: usize| r[i].parse::<u64>().unwrap();
        assert!(n(completed) > 0, "config completed nothing: {r:?}");
        assert!(n(p50) <= n(p99), "percentiles out of order: {r:?}");
        match r[config].as_str() {
            "clean" => {
                // Nothing may fire with the fault plane disarmed.
                assert_eq!(n(failed) + n(retried) + n(deaths) + n(restarts), 0, "{r:?}");
            }
            "faults-1pct" => {
                // The storm actually stormed: the seeded rules fired
                // (deterministic per (seed, occurrence), so this is not
                // a flaky coin-flip) and every death healed.
                assert!(n(retried) + n(failed) > 0, "no body fault fired: {r:?}");
                assert!(n(deaths) > 0, "no worker kill fired: {r:?}");
                assert_eq!(n(deaths), n(respawns), "unhealed deaths: {r:?}");
            }
            other => panic!("unexpected config {other}"),
        }
    }
}
