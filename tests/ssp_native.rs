//! SSP-native semantics: the compile→schedule→execute pipeline must be
//! observationally equal to sequential interpretation.
//!
//! * Randomized property: generated affine `forall` nests (random depth,
//!   trip counts, stores/reads with mixed-radix strides and small offset
//!   shifts — which create genuine carried dependences) run through the
//!   full SSP path on a grouped topology and must print exactly what a
//!   single-worker in-order run prints. The generator stays inside the
//!   lowerable fragment and the test asserts no bail-out happened, so a
//!   regression in the lowering or the wavefront cannot hide behind the
//!   naive fallback.
//! * Directed cases: a carried-dependence nest that must take the
//!   wavefront, on several topologies.

use proptest::prelude::*;

use htvm_core::Topology;
use litlx::lang::{parse, Interp, LoopStrategy};

/// Tiny deterministic generator state (the vendored proptest shim seeds
/// per-case; we derive everything from one u64 for readability of
/// failures).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Build a random affine nest program. `t` (written) is addressed with
/// mixed-radix strides plus small constant offsets; `s` (read-only) with
/// arbitrary in-bounds affine forms. All values are small integers, so
/// f64 arithmetic is exact and output comparison is bitwise.
fn gen_program(seed: u64) -> String {
    let mut r = Lcg(seed.wrapping_add(0x9e3779b97f4a7c15));
    let depth = 1 + r.below(3) as usize;
    let trips: Vec<u64> = (0..depth).map(|_| 2 + r.below(3)).collect();
    let points: u64 = trips.iter().product();
    // Mixed-radix strides: stride[l] = Π trips[l+1..].
    let strides: Vec<u64> = (0..depth)
        .map(|l| trips[l + 1..].iter().product::<u64>())
        .collect();
    let pad = 4u64;
    let t_len = points + pad;
    let s_len = points + pad;
    let vars = ["v0", "v1", "v2"];
    let mr = |r: &mut Lcg| -> String {
        // The canonical mixed-radix address plus a small offset.
        let off = r.below(pad);
        let terms: Vec<String> = (0..depth)
            .map(|l| format!("{} * {}", vars[l], strides[l]))
            .collect();
        format!("{} + {off}", terms.join(" + "))
    };
    let expr = |r: &mut Lcg| -> String {
        match r.below(5) {
            0 => format!("{}", 1 + r.below(4)),
            1 => vars[r.below(depth as u64) as usize].to_string(),
            2 => format!("s[{}]", mr(r)),
            3 => format!("t[{}]", mr(r)),
            _ => format!(
                "{} * {} + {}",
                vars[r.below(depth as u64) as usize],
                1 + r.below(3),
                1 + r.below(4)
            ),
        }
    };
    let stores = 1 + r.below(2);
    let mut body = String::new();
    for _ in 0..stores {
        let opch = if r.below(3) == 0 { "+=" } else { "=" };
        let lhs = mr(&mut r);
        let e1 = expr(&mut r);
        let e2 = expr(&mut r);
        body.push_str(&format!("t[{lhs}] {opch} {e1} + {e2}; "));
    }
    // Wrap the body in the nest: the outermost level is always `forall`;
    // inner levels randomly `forall` or `for`.
    let mut nest = body;
    for l in (0..depth).rev() {
        let kw = if l == 0 || r.below(2) == 0 {
            "forall"
        } else {
            "for"
        };
        nest = format!("{kw} {} in 0..{} {{ {nest} }}", vars[l], trips[l]);
    }
    format!(
        "fn main() {{
            let s = array({s_len});
            let t = array({t_len});
            for q in 0..{s_len} {{ s[q] = q % 5 + 1; }}
            for q in 0..{t_len} {{ t[q] = q % 3; }}
            {nest}
            for q in 0..{t_len} {{ print(t[q]); }}
        }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pipelined execution of random affine nests produces the same array
    /// contents as sequential interpretation — and really took the SSP
    /// path (no silent fallback).
    #[test]
    fn random_affine_nests_match_sequential(seed in 0u64..100_000) {
        let src = gen_program(seed);
        let p = parse(&src).unwrap_or_else(|e| panic!("generated program failed to parse: {e}\n{src}"));
        let seq = Interp::new(1).run(&p).expect("sequential run");
        let ssp = Interp::with_topology(Topology::domains(2, 2))
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .expect("ssp run");
        prop_assert_eq!(ssp.ssp_bailouts, 0, "generator left the lowerable fragment:\n{}", src);
        prop_assert_eq!(ssp.ssp_foralls, 1, "nest did not take the SSP path:\n{}", src);
        prop_assert_eq!(&ssp.printed, &seq.printed, "ssp diverged from sequential:\n{}", src);
    }
}

/// The acceptance case spelled out: a `forall` nest with a carried
/// dependence lowers through `LoopNest`, executes on the native pool as
/// an SGT wavefront, and matches sequential output — on several
/// topologies.
#[test]
fn carried_dependence_wavefront_on_grouped_topologies() {
    let src = "fn main() {
        let n = 96;
        let a = array(n + 2);
        a[0] = 1; a[1] = 1;
        forall i in 0..n { a[i + 2] = a[i + 1] + a[i]; }
        for q in 0..n + 2 { print(a[q]); } }";
    let p = parse(src).unwrap();
    let seq = Interp::new(1).run(&p).unwrap();
    for topo in [
        Topology::flat(4),
        Topology::domains(2, 2),
        Topology::from_sizes([1, 3]),
    ] {
        let out = Interp::with_topology(topo.clone())
            .with_strategy(LoopStrategy::Ssp)
            .run(&p)
            .unwrap();
        assert_eq!(out.printed, seq.printed, "topology {topo:?}");
        assert_eq!(out.ssp_foralls, 1, "topology {topo:?}");
        assert_eq!(out.ssp_bailouts, 0, "topology {topo:?}");
        assert_eq!(
            out.ssp_wavefronts, 1,
            "distance-1 and -2 carried deps require the wavefront ({topo:?})"
        );
        assert!(out.sgt_spawns > 0, "groups must spawn as SGT-grain jobs");
    }
}

/// Modulo-schedule legality at the *partitioned* level: for every level
/// plan of the standard nests, the achieved schedule verifies against its
/// reduced DDG (no dependence violated at the chosen II, no resource
/// oversubscription) and the partition's wavefront flag agrees with the
/// DDG's carried distances.
#[test]
fn level_plans_verify_and_wavefront_matches_ddg() {
    use htvm_ssp::ddg::Ddg;
    use htvm_ssp::ir::LoopNest;
    use htvm_ssp::partition::PartitionPlan;
    use htvm_ssp::ssp::{schedule_all_levels, SspConfig};

    let cfg = SspConfig::default();
    for nest in [
        LoopNest::matmul_like(8, 8, 8),
        LoopNest::stencil_like(8, 32),
        LoopNest::elementwise(16, 16),
    ] {
        for plan in schedule_all_levels(&nest, &cfg) {
            let ddg = Ddg::for_level(&nest, plan.level).expect("scheduled level has a DDG");
            plan.schedule
                .verify(&nest, &ddg, &cfg.resources)
                .unwrap_or_else(|e| panic!("{} level {}: {e}", nest.name, plan.level));
            let part = PartitionPlan::new(&plan, nest.trip_counts[plan.level], 4);
            let carried = ddg.edges.iter().any(|e| e.distance > 0);
            assert_eq!(
                part.wavefront, carried,
                "{} level {}: wavefront flag disagrees with DDG",
                nest.name, plan.level
            );
        }
    }
}
