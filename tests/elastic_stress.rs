//! Elastic pool stress: grow/shrink churn racing live load.
//!
//! The elastic protocol's dangerous windows are (a) a retiring worker
//! absorbing a wake token meant for a spawner and parking forever, and
//! (b) jobs stranded in a retired worker's deque. Both show up here as
//! either a lost job (count mismatch) or a hang in `wait_quiescent`
//! (the CI stress job wraps this suite in a `timeout`, so a hang fails
//! fast instead of stalling the pipeline).
//!
//! These tests drive hundreds of grow→retire cycles while external
//! producers keep spawning, then assert exact job conservation and a
//! fully-parked, token-clean quiescent state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use htvm::core::{DomainId, Pool, Topology};

/// Grow/retire cycles with load in flight: every cycle activates
/// headroom slots, spawns a burst that lands partly on the new workers,
/// then retires back down while the burst is still draining. Retired
/// workers must republish their deques, so no job may be lost.
#[test]
fn grow_shrink_cycles_lose_no_jobs() {
    for (topo, headroom) in [
        (Topology::flat(1), 2),
        (Topology::flat(2), 1),
        (Topology::domains(2, 1), 2),
        (Topology::from_sizes([1, 3]), 1),
    ] {
        let pool = Pool::with_elastic(topo.clone(), headroom);
        let base = pool.active_workers();
        let done = Arc::new(AtomicU64::new(0));
        let mut expect = 0u64;
        let nd = pool.num_domains() as u64;
        for cycle in 0..200u64 {
            // Grow into every domain that has a vacant slot.
            let mut grown = Vec::new();
            for d in 0..nd {
                if let Some(w) = pool.grow_in(DomainId(d)) {
                    grown.push(w);
                }
            }
            for i in 0..6u64 {
                let done = done.clone();
                let job = move |_: &htvm::core::WorkerCtx| {
                    done.fetch_add(1, Ordering::Relaxed);
                };
                if i % 2 == 0 {
                    pool.spawn(job);
                } else {
                    pool.spawn_in(DomainId(i % nd), job);
                }
                expect += 1;
            }
            // Retire the freshly-grown workers while the burst may still
            // be sitting in their deques — the republish path under fire.
            for w in grown {
                assert!(pool.retire_worker(w), "cycle {cycle}: retire refused");
            }
            // Some cycles let the survivors actually park so the next
            // grow races park entry, not just the spinning idle phase.
            if cycle % 32 == 0 {
                pool.wait_quiescent();
                assert_eq!(
                    done.load(Ordering::Relaxed),
                    expect,
                    "topology {topo:?} lost a job by cycle {cycle}"
                );
            }
        }
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::Relaxed), expect, "topology {topo:?}");
        assert_eq!(pool.active_workers(), base, "topology {topo:?}");
        assert_eq!(pool.stats().total_executed(), expect);
        // Token hygiene: once idle, every surviving worker parks and
        // stays parked — a retiree that stole a spawner's token would
        // leave the count short (or a later spawn hung above).
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while pool.parked_workers() < pool.active_workers() {
            assert!(
                std::time::Instant::now() < deadline,
                "topology {topo:?}: workers never fully parked after churn"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// External producers race the grow/retire churn concurrently (not
/// phase-locked like the cycle test): a churn thread flips the worker
/// set while producers spawn from outside. Everything must drain.
#[test]
fn concurrent_producers_race_elastic_churn() {
    let pool = Arc::new(Pool::with_elastic(Topology::domains(2, 1), 2));
    let done = Arc::new(AtomicU64::new(0));
    let producers = 3u64;
    let bursts = 200u64;
    let churn = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            let nd = pool.num_domains() as u64;
            for cycle in 0..200u64 {
                let d = DomainId(cycle % nd);
                if cycle % 2 == 0 {
                    pool.grow_anywhere(d);
                } else {
                    pool.retire_in(d);
                }
                if cycle % 16 == 0 {
                    std::thread::sleep(Duration::from_micros(500));
                } else {
                    std::thread::yield_now();
                }
            }
        })
    };
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let pool = pool.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                for b in 0..bursts {
                    let done = done.clone();
                    // One external spawn fanning into two worker-side
                    // spawns: deque pushes from a worker that may be
                    // flagged retiring mid-job must still be drained.
                    pool.spawn(move |ctx| {
                        for _ in 0..2 {
                            let done = done.clone();
                            ctx.spawn(move |_| {
                                done.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                    if (b + p) % 16 == 0 {
                        std::thread::sleep(Duration::from_micros(500));
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    churn.join().unwrap();
    pool.wait_quiescent();
    assert_eq!(
        done.load(Ordering::Relaxed),
        producers * bursts * 3,
        "lost spawns under racing elastic churn"
    );
    // At least the reservation floor survived the churn storm, and the
    // grow/retire ledger balances against the final worker count.
    assert!(pool.active_workers() >= 1);
    let s = pool.stats();
    assert_eq!(
        s.grows as i64 - s.retires as i64,
        pool.active_workers() as i64 - 2
    );
}
