//! Locality-domain work stealing: correctness on every topology shape
//! (single-CPU safe) and proximity preference (multicore-gated — steal
//! observations depend on real parallel scheduling).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm::core::{DomainId, Htvm, HtvmConfig, Pool, Topology};

mod common;

/// Every topology shape must drain every job — including affinity spawns
/// aimed at each domain, global spawns, and nested local spawns — on any
/// host, single-CPU included.
#[test]
fn all_topologies_drain_all_jobs() {
    for topo in [
        Topology::flat(1),
        Topology::flat(4),
        Topology::domains(2, 2),
        Topology::domains(4, 1),
        Topology::from_sizes([1, 3]),
        Topology::from_sizes([2, 1, 2]),
    ] {
        let pool = Pool::with_topology(topo.clone());
        let done = Arc::new(AtomicU64::new(0));
        let per_domain = 16u64;
        for d in 0..pool.num_domains() as u64 {
            let done = done.clone();
            pool.spawn_in(DomainId(d), move |ctx| {
                // Each affinity root fans out locally; children are
                // stealable in proximity order.
                for _ in 0..per_domain - 1 {
                    let done = done.clone();
                    ctx.spawn(move |_| {
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        for _ in 0..8 {
            let done = done.clone();
            pool.spawn(move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_quiescent();
        let expect = pool.num_domains() as u64 * per_domain + 8;
        assert_eq!(
            done.load(Ordering::Relaxed),
            expect,
            "topology {topo:?} lost jobs"
        );
        let stats = pool.stats();
        assert_eq!(stats.total_executed(), expect);
        assert_eq!(stats.domain_of.len(), pool.workers());
    }
}

/// The LGT-level affinity hint: a subtree pinned to each domain in turn
/// completes and joins correctly everywhere (placement is a preference,
/// never a correctness condition).
#[test]
fn lgt_affinity_subtree_completes_on_every_domain() {
    let htvm = Htvm::new(HtvmConfig::with_topology(Topology::domains(2, 2)));
    for d in 0..2 {
        let h = htvm.lgt_in(DomainId(d), |lgt| {
            let mem = lgt.memory().clone();
            for _ in 0..4 {
                let mem = mem.clone();
                lgt.spawn_sgt(move |sgt| {
                    for _ in 0..8 {
                        let mem = mem.clone();
                        sgt.spawn_sgt(move |_| {
                            mem.fetch_add(0, 1);
                        });
                    }
                });
            }
        });
        h.join();
        assert_eq!(h.memory().read(0), 32, "domain {d} subtree incomplete");
    }
}

/// Proximity preference: under a grouped topology, steals are satisfied
/// inside the domain first, so the remote-steal ratio drops below the
/// flat baseline's (which is 1 by construction whenever anything was
/// stolen). Steal observations require real cores; best of three runs
/// absorbs scheduling noise.
#[test]
fn local_steals_preferred_over_remote() {
    if !common::multicore() {
        return;
    }
    // One root job in domain 0 spawns all the work locally; every other
    // worker's share arrives by stealing.
    let run = |topo: Topology| {
        let pool = Pool::with_topology(topo);
        pool.spawn_in(DomainId(0), |ctx| {
            for _ in 0..400 {
                ctx.spawn(|_| {
                    std::hint::black_box((0..20_000).sum::<u64>());
                });
            }
        });
        pool.wait_quiescent();
        pool.stats()
    };
    let mut last = String::new();
    for _ in 0..3 {
        let flat = run(Topology::flat(4));
        let grouped = run(Topology::domains(2, 2));
        last = format!(
            "flat: {} steals (ratio {:.3}); 2-dom: {} local / {} remote (ratio {:.3})",
            flat.total_stolen(),
            flat.remote_steal_ratio(),
            grouped.total_local_steals(),
            grouped.total_remote_steals(),
            grouped.remote_steal_ratio()
        );
        if flat.total_stolen() > 0
            && grouped.total_local_steals() > 0
            && grouped.remote_steal_ratio() < flat.remote_steal_ratio()
        {
            return;
        }
    }
    panic!("grouped topology never preferred local steals: {last}");
}
