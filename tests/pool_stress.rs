//! Park/wake protocol stress: hammer the exact races the epoch-stamped
//! sleeper registry exists to close (see `crates/core/src/native.rs`,
//! "Idle protocol").
//!
//! The dangerous window is a spawn landing between a worker's last empty
//! work search and its park. These tests drive the pool through thousands
//! of quiesce→respawn cycles — exactly the cadence that maximizes time
//! spent in that window — across every canonical topology shape, from
//! both external threads and pool workers. A protocol regression shows up
//! as a lost wakeup, which `wait_quiescent` turns into a hang: the CI
//! stress job wraps this suite in a `timeout`, so a hang fails fast
//! instead of stalling the pipeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use htvm::core::{DomainId, Pool, Topology};
use htvm::serve::{NativeParcel, Outcome, RejectReason, Server, ServerConfig, TenantConfig};

/// The four canonical topology shapes: degenerate single worker, flat
/// (singleton domains), grouped, and uneven.
fn topologies() -> [Topology; 4] {
    [
        Topology::flat(1),
        Topology::flat(4),
        Topology::domains(2, 2),
        Topology::from_sizes([1, 3]),
    ]
}

/// Repeated quiesce→respawn cycles: after every quiescence the workers
/// drift toward (or into) park, and the next burst of spawns must drag
/// them back out — thousands of crossings of the check-then-park window.
/// No job may be lost and no `wait_quiescent` may hang.
#[test]
fn quiesce_respawn_cycles_lose_no_jobs() {
    for topo in topologies() {
        let pool = Pool::with_topology(topo.clone());
        let done = Arc::new(AtomicU64::new(0));
        let mut expect = 0u64;
        for cycle in 0..400u64 {
            // Some cycles give the workers time to actually park, so both
            // the spinning and the parked flavors of idle get raced.
            if cycle % 32 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            let nd = pool.num_domains() as u64;
            for i in 0..5u64 {
                let done = done.clone();
                let job = move |_: &htvm::core::WorkerCtx| {
                    done.fetch_add(1, Ordering::Relaxed);
                };
                if i % 2 == 0 {
                    pool.spawn(job);
                } else {
                    pool.spawn_in(DomainId(i % nd), job);
                }
                expect += 1;
            }
            pool.wait_quiescent();
            assert_eq!(
                done.load(Ordering::Relaxed),
                expect,
                "topology {topo:?} lost a job in cycle {cycle}"
            );
        }
        assert_eq!(pool.stats().total_executed(), expect);
    }
}

/// External spawner threads race the workers' park entry concurrently
/// (not phase-locked like the cycle test): several producers, jittered
/// pacing, nested worker-side spawns. Everything must drain.
#[test]
fn concurrent_external_spawns_race_park_entry() {
    for topo in topologies() {
        let pool = Arc::new(Pool::with_topology(topo.clone()));
        let done = Arc::new(AtomicU64::new(0));
        let producers = 3u64;
        let bursts = 120u64;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let pool = pool.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    for b in 0..bursts {
                        let done = done.clone();
                        // Each burst: one external spawn fanning into two
                        // worker-side spawns (deque pushes wake a domain
                        // sibling — the third wake flavor under race).
                        pool.spawn(move |ctx| {
                            for _ in 0..2 {
                                let done = done.clone();
                                ctx.spawn(move |_| {
                                    done.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                        // Jitter the pacing so producers hit idle workers
                        // in different phases of the spin-then-park slide.
                        if (b + p) % 16 == 0 {
                            std::thread::sleep(Duration::from_micros(500));
                        } else {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        pool.wait_quiescent();
        assert_eq!(
            done.load(Ordering::Relaxed),
            producers * bursts * 3,
            "topology {topo:?} lost spawns under racing producers"
        );
    }
}

/// Batched domain spawns racing park entry: the batch publishes all jobs
/// before its single epoch bump, then delivers grouped wakes — the
/// protocol's only multi-wake path.
#[test]
fn batched_spawns_race_park_entry() {
    let topo = Topology::domains(2, 2);
    let pool = Pool::with_topology(topo);
    let done = Arc::new(AtomicU64::new(0));
    let mut expect = 0u64;
    for cycle in 0..300u64 {
        if cycle % 32 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let k = 1 + (cycle % 4);
        pool.spawn_batch_in((0..k).map(|g| {
            let done = done.clone();
            (DomainId(g % 2), move |_: &htvm::core::WorkerCtx| {
                done.fetch_add(1, Ordering::Relaxed);
            })
        }));
        expect += k;
        pool.wait_quiescent();
        assert_eq!(done.load(Ordering::Relaxed), expect, "cycle {cycle}");
    }
}

/// Panic-during-claim coverage for the segmented injector: a job body
/// unwinding right after its slot was claimed (WRITTEN→TAKEN) must not
/// strand the slot or its segment — consumption must march on past the
/// panicking job, across segment boundaries, and the pool must stay fully
/// usable afterwards. A stranded slot shows up here as a lost job
/// (`done + panics < spawned`) or a hung `wait_quiescent`.
#[test]
fn panicking_jobs_do_not_strand_injector_slots() {
    let pool = Pool::with_topology(Topology::domains(2, 2));
    let done = Arc::new(AtomicU64::new(0));
    let mut spawned = 0u64;
    let mut expect_panics = 0u64;
    // Three rounds, each several segments (SEGMENT_CAP is 32) so panics
    // land on every segment position, including the retire-triggering
    // last slot of a drained segment.
    for round in 0..3u64 {
        for i in 0..100u64 {
            let done = done.clone();
            if (i + round) % 3 == 0 {
                expect_panics += 1;
                pool.spawn(move |_| panic!("injected failure"));
            } else {
                pool.spawn(move |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            spawned += 1;
        }
        pool.wait_quiescent();
        assert_eq!(
            done.load(Ordering::Relaxed) + pool.stats().panics,
            spawned,
            "a job was stranded in round {round}"
        );
    }
    assert_eq!(pool.stats().panics, expect_panics);
    // The injector must still be fully serviceable after the carnage.
    for _ in 0..64u64 {
        let done = done.clone();
        pool.spawn(move |_| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        spawned += 1;
    }
    pool.wait_quiescent();
    assert_eq!(done.load(Ordering::Relaxed) + expect_panics, spawned);
}

/// The acceptance claim of the protocol change: workers park indefinitely
/// on an idle pool — no 1ms re-poll, no periodic self-wake. `parks`
/// counts park *events*, so a re-polling worker would grow it by ~1000/s;
/// a correctly parked pool holds it flat.
#[test]
fn parked_workers_stay_parked_on_an_idle_pool() {
    for topo in topologies() {
        let pool = Pool::with_topology(topo.clone());
        let workers = pool.workers() as u64;
        assert!(
            pool.wait_fully_parked(Duration::from_secs(30)),
            "topology {topo:?}: workers never parked: {:?}",
            pool.stats()
        );
        let before = pool.stats();
        assert_eq!(before.parks, workers, "each worker parks exactly once");
        // Under the deleted timed-wait protocol this window would see
        // dozens of re-parks per worker.
        std::thread::sleep(Duration::from_millis(60));
        let after = pool.stats();
        assert_eq!(
            after.parks, before.parks,
            "topology {topo:?}: a parked worker woke itself"
        );
        assert_eq!(after.total_wakes(), 0, "nothing spawned, nothing woken");
        assert_eq!(after.total_executed(), 0);
    }
}

/// After real work drains, the pool returns to full park and stays there
/// — quiescence must not leave a worker oscillating.
#[test]
fn pool_reparks_fully_after_work() {
    let pool = Pool::with_topology(Topology::domains(2, 2));
    let done = Arc::new(AtomicU64::new(0));
    for _ in 0..64 {
        let done = done.clone();
        pool.spawn(move |ctx| {
            let done = done.clone();
            ctx.spawn(move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
        });
    }
    pool.wait_quiescent();
    assert_eq!(done.load(Ordering::Relaxed), 64);
    // Every worker ends up registered as a sleeper again (the live gauge,
    // not a counter difference — wakes can outnumber parks when a waker
    // pops a worker that registered but refused to sleep).
    assert!(
        pool.wait_fully_parked(Duration::from_secs(30)),
        "pool never re-parked fully: {:?} ({} registered)",
        pool.stats(),
        pool.parked_workers()
    );
    let settled = pool.stats();
    std::thread::sleep(Duration::from_millis(40));
    let later = pool.stats();
    assert_eq!(settled.parks, later.parks, "re-parked pool must stay still");
}

/// Serving-layer churn on the raw pool: 200 tenants join and leave
/// mid-load while a racing thread fires cancellations into the stream.
/// Afterwards the pool must drain back to a *fully parked* state with
/// no leaked sleeper tokens (parks stay flat), every handle must have
/// resolved exactly once, and the per-tenant stat slices must sum to
/// the pool's global counters — the serving layer may not lose or
/// double-count a single grain.
#[test]
fn tenant_churn_with_racing_cancels_drains_clean() {
    const CYCLES: usize = 200;
    const PER_TENANT: usize = 6;
    const LIVE_WINDOW: usize = 4;

    let pool = Arc::new(Pool::with_topology(Topology::domains(2, 2)));
    let server = Server::on_pool(
        pool.clone(),
        ServerConfig {
            max_in_flight: 8,
            ..ServerConfig::default()
        },
    );

    // The canceller races the dispatcher over tokens streamed to it.
    let (tx, rx) = std::sync::mpsc::channel::<htvm::core::CancelToken>();
    let canceller = std::thread::spawn(move || {
        let mut fired = 0u64;
        for token in rx {
            token.cancel();
            fired += 1;
        }
        fired
    });

    let ran = Arc::new(AtomicU64::new(0));
    let mut live = std::collections::VecDeque::new();
    let mut retired = Vec::new();
    for cycle in 0..CYCLES {
        let tenant = server.register_tenant(TenantConfig::weighted((cycle % 4 + 1) as u64));
        let mut handles = Vec::with_capacity(PER_TENANT);
        for i in 0..PER_TENANT {
            let ran = ran.clone();
            let h = tenant
                .submit(NativeParcel::new(move |_| {
                    ran.fetch_add(1, Ordering::Relaxed);
                }))
                .expect("queue sized for one cycle's burst");
            if i % 3 == 0 {
                tx.send(h.token().clone()).unwrap();
            }
            handles.push(h);
        }
        live.push_back((tenant, handles));
        // Leave mid-load: the oldest tenant closes while its requests
        // may still be queued or in flight.
        if live.len() > LIVE_WINDOW {
            let (old, hs) = live.pop_front().unwrap();
            old.close();
            retired.push((old, hs));
        }
    }
    drop(tx);
    let cancels_fired = canceller.join().unwrap();
    assert_eq!(cancels_fired, (CYCLES * PER_TENANT).div_ceil(3) as u64);
    for (t, _) in &live {
        t.close();
    }
    retired.extend(live.drain(..));

    assert!(
        server.wait_idle(Duration::from_secs(60)),
        "serving pool never drained: {server:?}"
    );

    // Every handle resolved exactly once, and the client-visible
    // outcomes agree with the per-tenant counters bucket by bucket.
    let mut outcome_totals = htvm::serve::TenantStats::default();
    for (tenant, handles) in &retired {
        let mut completed = 0u64;
        let mut cancelled = 0u64;
        let mut closed_rejects = 0u64;
        for h in handles {
            match h.wait() {
                Outcome::Completed => completed += 1,
                Outcome::Cancelled => cancelled += 1,
                Outcome::Rejected(RejectReason::TenantClosed) => closed_rejects += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let stats = tenant.stats();
        assert_eq!(stats.submitted, PER_TENANT as u64);
        assert_eq!(stats.settled(), stats.submitted, "unsettled request");
        assert_eq!(
            (completed, cancelled, closed_rejects),
            (stats.completed, stats.cancelled, stats.closed_rejects),
            "handles and counters disagree for tenant {}",
            tenant.id()
        );
        outcome_totals.completed += completed;
        outcome_totals.cancelled += cancelled;
        outcome_totals.closed_rejects += closed_rejects;
    }
    assert_eq!(
        outcome_totals.completed + outcome_totals.cancelled + outcome_totals.closed_rejects,
        (CYCLES * PER_TENANT) as u64,
        "requests leaked"
    );
    assert_eq!(
        outcome_totals.completed,
        ran.load(Ordering::Relaxed),
        "every Completed ran exactly once and nothing else ran"
    );

    // Per-tenant pool slices sum to the global pool counters: this pool
    // ran nothing but serve work, so nothing may be missing and nothing
    // may be double-tagged.
    let executed_sum: u64 = retired.iter().map(|(t, _)| t.pool_slice().executed).sum();
    let dropped_sum: u64 = retired.iter().map(|(t, _)| t.pool_slice().cancelled).sum();
    let global = pool.stats();
    assert_eq!(executed_sum, global.total_executed());
    assert_eq!(dropped_sum, global.cancelled);
    assert!(
        dropped_sum <= outcome_totals.cancelled,
        "grain-boundary drops are a subset of cancellations"
    );

    server.shutdown();
    // No leaked sleeper tokens: the pool re-parks fully and stays flat.
    assert!(
        pool.wait_fully_parked(Duration::from_secs(30)),
        "pool never re-parked after serving churn: {:?} ({} registered)",
        pool.stats(),
        pool.parked_workers()
    );
    let settled = pool.stats();
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(
        pool.stats().parks,
        settled.parks,
        "a worker kept waking after the serving load ended"
    );
}
