//! End-to-end tests of the serving layer through the umbrella crate:
//! batch jobs re-entering a live serving pool, racing cancellations
//! resolving exactly once, deadlines under load, and a lenient
//! weighted-fairness smoke (the strict fairness property lives in
//! `crates/serve/tests/fairness.rs` on the pure scheduler, where it is
//! deterministic).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use htvm::apps::neuro::{run_parallel_on, Mapping, Network, NetworkSim, NetworkSpec};
use htvm::core::{Htvm, HtvmConfig};
use htvm::serve::{NativeParcel, Outcome, Server, ServerConfig, TenantConfig};

fn spikes_sequential(spec: &NetworkSpec, steps: u64) -> u64 {
    let mut sim = NetworkSim::new(Network::build(spec.clone()));
    sim.run(steps);
    sim.total_spikes
}

/// The PR-7 footgun test: `Htvm`/`Pool` handles used to assume one
/// owning batch run. Two concurrent `run_parallel_on` calls — racing
/// each other *and* a serving front-end's request stream on the same
/// pool — must both complete bit-faithfully, with no deadlock and no
/// panic. Completion is dataflow (each run joins its own LGT), never
/// `Pool::wait_quiescent`, which on a shared pool would wait for
/// everyone's work.
#[test]
fn batch_runs_reenter_a_live_serving_pool() {
    let htvm = Arc::new(Htvm::new(HtvmConfig::with_workers(2)));
    let server = Server::new(&htvm, ServerConfig::default());
    let tenant = server.register_tenant(TenantConfig {
        weight: 2,
        queue_capacity: Some(256),
        home: None,
        retry: None,
    });

    let seq = spikes_sequential(&NetworkSpec::tiny(), 120);

    // A request stream that stays live across both batch runs.
    let ticks = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..128)
        .map(|_| {
            let ticks = ticks.clone();
            tenant
                .submit(NativeParcel::new(move |_| {
                    ticks.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap()
        })
        .collect();

    let runs: Vec<_> = (0..2)
        .map(|_| {
            let htvm = htvm.clone();
            std::thread::spawn(move || {
                run_parallel_on(
                    &htvm,
                    Network::build(NetworkSpec::tiny()),
                    120,
                    Mapping::Hierarchical,
                )
            })
        })
        .collect();
    for run in runs {
        let report = run.join().expect("re-entrant batch run must not panic");
        assert_eq!(
            report.total_spikes, seq,
            "a batch run on a shared serving pool stays bit-faithful"
        );
    }

    for h in &handles {
        assert_eq!(h.wait(), Outcome::Completed);
    }
    assert!(server.wait_idle(Duration::from_secs(30)));
    assert_eq!(ticks.load(Ordering::Relaxed), 128);
    let stats = tenant.stats();
    assert_eq!(stats.completed, 128);
    assert_eq!(stats.settled(), stats.submitted);
}

/// Racing cancellations: every admitted request resolves **exactly
/// once** — the outcome IVar panics on a double write, so any
/// two-resolution bug fails the test structurally, not statistically —
/// and every submission is conserved across the outcome buckets.
#[test]
fn racing_cancels_resolve_exactly_once() {
    const N: usize = 300;
    let htvm = Htvm::new(HtvmConfig::with_workers(2));
    let server = Server::new(
        &htvm,
        ServerConfig {
            max_in_flight: 2,
            ..ServerConfig::default()
        },
    );
    let tenant = server.register_tenant(TenantConfig {
        weight: 1,
        queue_capacity: Some(N),
        home: None,
        retry: None,
    });

    let executed = Arc::new(AtomicU64::new(0));
    let handles: Arc<Vec<_>> = Arc::new(
        (0..N)
            .map(|_| {
                let executed = executed.clone();
                tenant
                    .submit(NativeParcel::new(move |_| {
                        executed.fetch_add(1, Ordering::Relaxed);
                    }))
                    .unwrap()
            })
            .collect(),
    );

    // Two threads cancel the same odd-indexed handles from opposite
    // ends, racing each other *and* the dispatcher.
    let cancellers: Vec<_> = [false, true]
        .into_iter()
        .map(|rev| {
            let handles = handles.clone();
            std::thread::spawn(move || {
                let idx: Box<dyn Iterator<Item = usize>> = if rev {
                    Box::new((0..N).rev())
                } else {
                    Box::new(0..N)
                };
                for i in idx {
                    if i % 2 == 1 {
                        handles[i].cancel();
                    }
                }
            })
        })
        .collect();
    for c in cancellers {
        c.join().unwrap();
    }

    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for (i, h) in handles.iter().enumerate() {
        match h.wait() {
            Outcome::Completed => completed += 1,
            Outcome::Cancelled => {
                assert_eq!(i % 2, 1, "only odd indices were cancelled");
                cancelled += 1;
            }
            other => panic!("request {i} resolved {other:?}"),
        }
    }
    assert!(server.wait_idle(Duration::from_secs(30)));
    assert_eq!(completed + cancelled, N as u64);
    assert_eq!(
        completed,
        executed.load(Ordering::Relaxed),
        "every Completed ran exactly once"
    );

    let stats = tenant.stats();
    assert_eq!(stats.completed, completed);
    assert_eq!(stats.cancelled, cancelled);
    assert_eq!(stats.settled(), stats.submitted);

    // The pool slice agrees: executed bodies == completions; grain-
    // boundary drops are a subset of the cancellations (the rest were
    // caught while still queued).
    let slice = tenant.pool_slice();
    assert_eq!(slice.executed, completed);
    assert!(slice.cancelled <= cancelled);
}

/// Deadlines under load: requests whose deadline already passed resolve
/// `Cancelled` at the grain boundary — none of their bodies run, even
/// while live traffic keeps the pool busy.
#[test]
fn expired_deadlines_never_execute_under_load() {
    let htvm = Htvm::new(HtvmConfig::with_workers(2));
    let server = Server::new(&htvm, ServerConfig::default());
    let live = server.register_tenant(TenantConfig::weighted(1));
    let doomed = server.register_tenant(TenantConfig::weighted(1));

    let past = Instant::now() - Duration::from_millis(1);
    let mut waits = Vec::new();
    for i in 0..50 {
        waits.push((
            false,
            live.submit(NativeParcel::new(move |_| {
                std::hint::black_box(i);
            }))
            .unwrap(),
        ));
        waits.push((
            true,
            doomed
                .submit_with_deadline(NativeParcel::new(|_| panic!("expired body ran")), past)
                .unwrap(),
        ));
    }
    for (is_doomed, h) in &waits {
        let want = if *is_doomed {
            Outcome::Cancelled
        } else {
            Outcome::Completed
        };
        assert_eq!(h.wait(), want);
    }
    assert!(server.wait_idle(Duration::from_secs(30)));
    assert_eq!(doomed.pool_slice().executed, 0, "no expired body ever ran");
    assert_eq!(doomed.stats().cancelled, 50);
    assert_eq!(live.stats().completed, 50);
}

/// Lenient end-to-end fairness: with equal offered load, the
/// weight-4 tenant drains well before the weight-1 tenant. The exact
/// bounded-deficit property is proved on the pure `Wdrr` in
/// `crates/serve/tests/fairness.rs`; here we only require that weights
/// visibly shape completion order on a real pool (with generous slack,
/// so the test stays deterministic on 1-CPU CI).
#[test]
fn heavier_tenants_drain_first() {
    const PER_TENANT: u64 = 60;
    let htvm = Htvm::new(HtvmConfig::with_workers(2));
    let server = Server::new(
        &htvm,
        ServerConfig {
            max_in_flight: 4,
            ..ServerConfig::default()
        },
    );
    let light = server.register_tenant(TenantConfig::weighted(1));
    let mid = server.register_tenant(TenantConfig::weighted(2));
    let heavy = server.register_tenant(TenantConfig::weighted(4));

    // Gate every action so all three queues are fully backlogged
    // before any request finishes: completion order is then shaped by
    // the dispatcher's weighted rounds, not by submission order.
    let go = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..PER_TENANT {
        for t in [&light, &mid, &heavy] {
            let go = go.clone();
            handles.push(
                t.submit(NativeParcel::new(move |_| {
                    while !go.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }))
                .unwrap(),
            );
        }
    }
    go.store(true, Ordering::Release);

    let deadline = Instant::now() + Duration::from_secs(30);
    while heavy.stats().completed < PER_TENANT {
        assert!(Instant::now() < deadline, "heavy tenant never drained");
        std::thread::yield_now();
    }
    let light_done = light.stats().completed;
    assert!(
        light_done < PER_TENANT,
        "weight-1 tenant should still be backlogged when weight-4 drains"
    );
    assert!(
        light_done <= 45,
        "weight-4 should drain ~3x faster than weight-1; light had {light_done}/{PER_TENANT}"
    );

    for h in &handles {
        assert_eq!(h.wait(), Outcome::Completed, "everyone finishes eventually");
    }
    assert!(server.wait_idle(Duration::from_secs(30)));
}
