//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;

use htvm_adapt::locality::{replay, LocalityCosts, LocalityPolicy};
use htvm_adapt::loop_sched::{evaluate_schedule, CostModel, ScheduleKind};
use htvm_ssp::ddg::Ddg;
use htvm_ssp::ir::{Dep, LoopNest, Op, OpKind};
use htvm_ssp::modulo::{modulo_schedule, Resources};

/// Random 2-deep loop nest with legal (lexicographically non-negative)
/// dependences.
fn arb_nest() -> impl Strategy<Value = LoopNest> {
    let op = (1u32..8, 0usize..3).prop_map(|(lat, kind)| {
        Op::new(
            "op",
            lat,
            match kind {
                0 => OpKind::Alu,
                1 => OpKind::Fpu,
                _ => OpKind::Mem,
            },
        )
    });
    (
        proptest::collection::vec(op, 2..6),
        proptest::collection::vec((0usize..6, 0usize..6, 0i64..3, 0i64..3), 0..8),
        2u64..16,
        2u64..16,
    )
        .prop_map(|(ops, raw_deps, n0, n1)| {
            let n_ops = ops.len();
            let deps = raw_deps
                .into_iter()
                .filter_map(|(from, to, d0, d1)| {
                    let (from, to) = (from % n_ops, to % n_ops);
                    // Zero-distance self-deps are illegal programs.
                    if from == to && d0 == 0 && d1 == 0 {
                        return None;
                    }
                    // Loop-independent dependences must point forward to
                    // represent an executable sequential body.
                    if d0 == 0 && d1 == 0 && from >= to {
                        return None;
                    }
                    Some(Dep {
                        from,
                        to,
                        distance: vec![d0, d1],
                    })
                })
                .collect();
            LoopNest {
                name: "random".to_string(),
                trip_counts: vec![n0, n1],
                ops,
                deps,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every modulo schedule that the scheduler produces verifies: all
    /// dependences respected, no resource oversubscription.
    #[test]
    fn modulo_schedules_are_legal(nest in arb_nest(), level in 0usize..2) {
        prop_assume!(nest.validate().is_ok());
        if let Some(ddg) = Ddg::for_level(&nest, level) {
            let res = Resources::default();
            if let Ok(s) = modulo_schedule(&nest, &ddg, &res) {
                prop_assert!(s.verify(&nest, &ddg, &res).is_ok());
                let bounds = ddg.mii(&nest, &res);
                prop_assert!(s.ii >= bounds.mii(), "II below MII");
            }
        }
    }

    /// Loop schedulers execute every iteration exactly once: total busy
    /// time minus dispatch overhead equals total work.
    #[test]
    fn loop_schedulers_conserve_work(
        costs in proptest::collection::vec(1u64..500, 1..300),
        workers in 1usize..16,
        kind_idx in 0usize..7,
    ) {
        let kind = ScheduleKind::PORTFOLIO[kind_idx];
        let model = CostModel { dispatch_overhead: 0, steal_overhead: 0 };
        let out = evaluate_schedule(kind, &costs, workers, &model);
        let total: u64 = costs.iter().sum();
        let busy: u64 = out.busy.iter().sum();
        prop_assert_eq!(busy, total, "policy {} lost/duplicated work", kind.name());
        prop_assert!(out.makespan >= total.div_ceil(workers as u64));
        prop_assert!(out.makespan <= total);
    }

    /// The coherence directory never lets the home appear in its own
    /// replica set, under arbitrary access traces and all policies.
    #[test]
    fn directory_invariants_hold(
        trace in proptest::collection::vec((0u16..6, 0u64..12, proptest::bool::ANY), 0..400),
        policy_idx in 0usize..4,
    ) {
        let policy = LocalityPolicy::PORTFOLIO[policy_idx];
        let d = replay(policy, LocalityCosts::default(), &trace);
        prop_assert!(d.check_invariants().is_ok());
        // Cost accounting is consistent: local + remote == accesses.
        prop_assert_eq!(d.local_hits + d.remote_accesses, trace.len() as u64);
    }

    /// Free replication never hurts: reads can only get cheaper (a replica
    /// turns later remote reads local), and writes cost the same under both
    /// policies when invalidation is free. (The analogous claim for
    /// *migration* is false even at zero cost: moving the home toward one
    /// accessor makes the old home's accesses remote — why thresholds
    /// exist.)
    #[test]
    fn free_replication_never_hurts(
        trace in proptest::collection::vec((0u16..6, 0u64..12, proptest::bool::ANY), 1..300),
    ) {
        let free = LocalityCosts {
            replicate: 0,
            invalidate: 0,
            ..LocalityCosts::default()
        };
        let fixed = replay(LocalityPolicy::FixedHome, free.clone(), &trace);
        let adapt = replay(LocalityPolicy::Replicate, free, &trace);
        prop_assert!(adapt.cycles <= fixed.cycles);
    }

    /// Migration pays off on the pattern it exists for — long single-node
    /// access runs per block — even at realistic (non-zero) costs.
    #[test]
    fn migration_pays_on_long_runs(
        blocks in 1u64..8,
        run_len in 20usize..60,
        seed in 0u64..64,
    ) {
        use htvm_adapt::locality::producer_consumer_trace;
        let trace = producer_consumer_trace(6, blocks, run_len, 0.2, seed);
        let fixed = replay(LocalityPolicy::FixedHome, LocalityCosts::default(), &trace);
        let mig = replay(
            LocalityPolicy::Migrate { threshold: 4 },
            LocalityCosts::default(),
            &trace,
        );
        prop_assert!(mig.cycles <= fixed.cycles);
    }

    /// SyncSlot: under any split of N signals into batches, the action
    /// fires exactly once.
    #[test]
    fn sync_slot_fires_once(batches in proptest::collection::vec(1usize..5, 1..10)) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let total: usize = batches.iter().sum();
        let fired = Arc::new(AtomicUsize::new(0));
        let slot = htvm_core::SyncSlot::with_action(total, {
            let fired = fired.clone();
            move || { fired.fetch_add(1, Ordering::SeqCst); }
        });
        for b in &batches {
            slot.signal_n(*b);
        }
        prop_assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Extra signals never re-fire.
        slot.signal();
        prop_assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    /// Cell lists find every pair within the cutoff on random systems.
    #[test]
    fn cell_list_complete(seed in 0u64..32) {
        use htvm_apps::md::cell_list::CellList;
        use htvm_apps::md::system::{MdSystem, SystemSpec};
        let spec = SystemSpec {
            waters: 60,
            ion_pairs: 3,
            protein_beads: 6,
            box_len: 7.0,
            seed,
            ..Default::default()
        };
        let s = MdSystem::build(&spec);
        let cutoff = 2.0;
        let cl = CellList::build(&s, cutoff);
        let cands: std::collections::HashSet<(u32, u32)> =
            cl.candidate_pairs().into_iter().collect();
        for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                let d = s.min_image(s.pos[i], s.pos[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < cutoff * cutoff {
                    prop_assert!(cands.contains(&(i as u32, j as u32)));
                }
            }
        }
    }

    /// The LITL-X lexer/parser round-trips arbitrary arithmetic: parsing
    /// never panics, and valid programs evaluate deterministically.
    #[test]
    fn litlx_arithmetic_is_deterministic(a in -100i64..100, b in 1i64..100, c in -100i64..100) {
        use htvm::litlx::lang::{parse, Interp};
        let src = format!(
            "fn main() {{ let x = {a} + {b} * {c}; let y = x / {b}; print(x); print(y); }}"
        );
        let prog = parse(&src).unwrap();
        let o1 = Interp::new(2).run(&prog).unwrap();
        let o2 = Interp::new(2).run(&prog).unwrap();
        prop_assert_eq!(o1.printed, o2.printed);
    }

    /// The LITL-X front end never panics, whatever bytes it is fed —
    /// errors must surface as `Err`, not as process aborts.
    #[test]
    fn litlx_parser_never_panics(src in "\\PC{0,200}") {
        use htvm::litlx::lang::parse;
        let _ = parse(&src); // Ok or Err — both fine; panics are not.
    }

    /// Fuzz the parser with token-shaped soup (identifiers, numbers,
    /// punctuation, keywords) — closer to real near-miss programs than
    /// raw unicode.
    #[test]
    fn litlx_parser_survives_token_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "fn", "main", "let", "if", "else", "while", "for", "forall",
                "spawn", "future", "atomic", "return", "in", "x", "y", "arr",
                "0", "1", "42", "3.5", "(", ")", "{", "}", "[", "]", ";",
                "=", "+", "-", "*", "/", "==", "!=", "<", "..", "@hint",
                "print", ",",
            ]),
            0..60,
        ),
    ) {
        use htvm::litlx::lang::parse;
        let src = words.join(" ");
        let _ = parse(&src);
    }

    /// The simulated machine is deterministic: identical configuration and
    /// kernels produce identical statistics, cycle for cycle.
    #[test]
    fn simulator_is_deterministic(
        tasks in 1usize..8,
        iters in 1u64..40,
        compute in 0u64..50,
        hw in 1u16..4,
    ) {
        use htvm::sim::{strided_kernel, Engine, GAddr, MachineConfig, Placement, SpawnClass};
        let run = || {
            let mut cfg = MachineConfig::small();
            cfg.hw_threads_per_unit = hw;
            let mut e = Engine::new(cfg);
            for t in 0..tasks {
                let k = strided_kernel(iters, compute, GAddr::dram(0, (t as u64) << 16), 64, 8);
                e.spawn(Placement::Unit(0, (t % 4) as u16), SpawnClass::Sgt, Box::new(k));
            }
            let s = e.run();
            (s.now, s.tasks_completed, s.total_accesses(), s.busy_cycles)
        };
        prop_assert_eq!(run(), run());
    }

    /// SSP thread partitioning conserves iterations: groups × threads
    /// covers exactly n_l, and the wavefront flag mirrors the dependence
    /// structure.
    #[test]
    fn ssp_partition_conserves_iterations(n_l in 1u64..500, threads in 1u64..64) {
        use htvm_ssp::ir::LoopNest;
        use htvm_ssp::partition::PartitionPlan;
        use htvm_ssp::ssp::{schedule_level, SspConfig};
        let nest = LoopNest::matmul_like(16, 8, 8);
        let plan = schedule_level(&nest, 0, &SspConfig::default()).unwrap();
        let part = PartitionPlan::new(&plan, n_l, threads);
        // Every iteration is covered; threads and group sizes stay sane.
        prop_assert!(part.threads >= 1 && part.threads <= threads.max(1));
        prop_assert!(part.group >= 1);
        prop_assert!(part.group * part.threads >= n_l, "groups must cover the loop");
        // No thread gets more than ⌈n_l/threads⌉ (the ragged tail may
        // leave trailing threads idle, but never overloads one).
        prop_assert!(part.group <= n_l.div_ceil(part.threads));
        prop_assert_eq!(part.wavefront, part.max_distance > 0);
    }

    /// The adaptive hill climber never leaves its bounds and, fed the
    /// contention model's own utilization, never converges to the extremes
    /// when the optimum is interior.
    #[test]
    fn hill_climber_stays_in_bounds(
        start in 1u32..16,
        lat in 50f64..2000.0,
        epochs in 5usize..60,
    ) {
        use htvm_adapt::latency::{ContentionModel, HillClimber};
        let m = ContentionModel::default();
        let mut hc = HillClimber::new(start, 16);
        for _ in 0..epochs {
            let u = m.utilization(hc.concurrency, lat);
            let c = hc.epoch(u);
            prop_assert!((1..=16).contains(&c));
        }
    }

    /// Any level projection of a machine tree round-trips through
    /// `Topology::from_sizes`: the projected topology is exactly the
    /// flat partition its domain sizes describe (same worker count, same
    /// lookup table, same start offsets), with the tree's structure
    /// visible in the domain counts — one domain per machine / package /
    /// core / hardware thread respectively — and a full worker→cpu
    /// pinning map with no cpu assigned twice.
    #[test]
    fn machine_tree_projections_round_trip(
        packages in 1usize..4,
        cores_per in 1usize..5,
        smt in 1usize..3,
    ) {
        use htvm_core::{Level, MachineTree, Topology};
        let tree = MachineTree::synthetic(packages, cores_per, smt);
        prop_assert_eq!(tree.budget(), packages * cores_per * smt);
        for (level, domains) in [
            (Level::Machine, 1),
            (Level::Package, packages),
            (Level::Core, packages * cores_per),
            (Level::Smt, packages * cores_per * smt),
        ] {
            let topo = tree.project(level);
            prop_assert_eq!(topo.workers(), tree.budget());
            prop_assert_eq!(topo.num_domains(), domains);
            // Round trip: rebuilding from the projected sizes yields the
            // identical partition.
            let rebuilt = Topology::from_sizes(topo.sizes().to_vec());
            prop_assert_eq!(rebuilt.sizes(), topo.sizes());
            for w in 0..topo.workers() {
                prop_assert_eq!(rebuilt.domain_of(w), topo.domain_of(w));
                prop_assert_eq!(topo.try_domain_of(w), Some(topo.domain_of(w)));
            }
            prop_assert_eq!(topo.try_domain_of(topo.workers()), None);
            // Pinning: every worker has a cpu, and no cpu is shared.
            let mut cpus: Vec<usize> = (0..topo.workers())
                .map(|w| topo.cpu_of(w).expect("projection carries cpu pins"))
                .collect();
            cpus.sort_unstable();
            cpus.dedup();
            prop_assert_eq!(cpus.len(), topo.workers());
        }
        // SMT siblings share a core-level domain: workers of one core are
        // contiguous and map to the same domain.
        let core_topo = tree.project(Level::Core);
        for w in 0..core_topo.workers() {
            prop_assert_eq!(core_topo.domain_of(w).0 as usize, w / smt);
        }
    }

    /// Profiled LITL-X runs agree with parallel runs on every print, and
    /// the recorded forall has one cost per iteration.
    #[test]
    fn litlx_profile_agrees_with_run(n in 8usize..80) {
        use htvm::litlx::lang::{parse, Interp};
        let src = format!(
            "fn main() {{ let a = array({n});
               forall i in 0..{n} {{ a[i] = i * i; }}
               print(sum(a)); }}"
        );
        let prog = parse(&src).unwrap();
        let run = Interp::new(3).run(&prog).unwrap();
        let (prof, foralls) = Interp::new(3).profile(&prog).unwrap();
        prop_assert_eq!(run.printed, prof.printed);
        prop_assert_eq!(foralls.len(), 1);
        prop_assert_eq!(foralls[0].costs.len(), n);
    }
}
