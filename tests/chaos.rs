//! Chaos stress suite: the serving stack under seeded fault injection.
//!
//! A storm of requests runs against a pool whose fault plane injects
//! panics and thread-kills at the worker and dispatcher sites
//! (`htvm::core::faults`). The suite asserts the three supervision
//! invariants end to end:
//!
//! 1. **Zero hangs** — every submitted request resolves exactly one
//!    [`Outcome`] within a bounded wait, whatever died underneath it.
//! 2. **Ledger conservation** — per tenant, every offered submission
//!    lands in exactly one settled bucket
//!    (`TenantStats::settled() == submitted`), and the client-side
//!    outcome tally matches the server's buckets exactly.
//! 3. **Census restored** — every worker death is healed by a respawn
//!    (`worker_deaths == respawns`: nothing in this suite retires), the
//!    pool ends at full strength, and a post-storm tail of requests
//!    still resolves.
//!
//! Fault rules are capped (`max=`) so the storm is finite and the
//! healed pool can prove itself on the tail. Injection is replayable:
//! the per-rule decision for occurrence *n* is a pure function of
//! `(seed, n)`, so a failure here reproduces under the same plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use htvm::core::{FaultKind, FaultPlan, FaultRule, Pool, Topology};
use htvm::serve::{
    NativeParcel, Outcome, RetryPolicy, Server, ServerConfig, TenantConfig, TenantHandle,
};

/// Per-request resolution bound. Generous: the suite asserts liveness,
/// not latency — a trip here means a hung client, the one thing
/// supervision must never allow.
const WAIT: Duration = Duration::from_secs(60);

/// Client-side outcome tally, compared against the server's buckets.
#[derive(Default, Debug)]
struct Tally {
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
}

impl Tally {
    fn add(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Completed => self.completed += 1,
            Outcome::Failed(_) => self.failed += 1,
            Outcome::Cancelled => self.cancelled += 1,
            Outcome::Rejected(_) => self.rejected += 1,
        }
    }
}

/// Submit a replayable counting body, riding out `QueueFull`
/// backpressure with a short client-side wait.
fn submit_counting(tenant: &TenantHandle, runs: &Arc<AtomicU64>) -> htvm::serve::ResponseHandle {
    loop {
        let runs = runs.clone();
        let parcel = NativeParcel::replayable(move |_| {
            runs.fetch_add(1, Ordering::Relaxed);
        });
        match tenant.submit(parcel) {
            Ok(h) => return h,
            Err(htvm::serve::SubmitError::QueueFull) => {
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("tenant refused a live submission: {e}"),
        }
    }
}

#[test]
fn chaos_storm_resolves_every_request_and_heals_the_pool() {
    const REQS: usize = 10_000;
    // ~1% aggregate fault rate across the sites, kills included, each
    // rule capped so the storm ends and the healed pool can prove
    // itself on the clean tail.
    let plan = FaultPlan::new()
        .rule(
            FaultRule::new("worker.body", FaultKind::Panic)
                .p(0.01)
                .seed(0xA11CE)
                .max(96),
        )
        .rule(
            FaultRule::new("worker.body", FaultKind::Kill)
                .p(0.004)
                .seed(0xB0B)
                .max(24),
        )
        .rule(
            FaultRule::new("worker.steal", FaultKind::Panic)
                .p(0.0005)
                .seed(0xCAFE)
                .max(8),
        )
        .rule(
            FaultRule::new("serve.dispatch", FaultKind::Kill)
                .p(0.01)
                .seed(0xD15)
                .max(6),
        );
    let topology = Topology::domains(2, 2);
    let full_census = topology.workers();
    let pool = Arc::new(Pool::with_fault_plan(topology, 0, plan));
    let server = Server::on_pool(
        pool.clone(),
        ServerConfig {
            max_in_flight: 32,
            default_queue_capacity: 1024,
            // No overload shedding: this suite measures failure
            // containment, not triage (sheds would still conserve the
            // ledger, but a zero keeps the buckets easy to read).
            max_queued_total: REQS + 1024,
            ..ServerConfig::default()
        },
    );
    // One tenant retries its failed attempts, one takes failures raw —
    // both must conserve their ledgers identically.
    let tenants = [
        server.register_tenant(TenantConfig {
            weight: 2,
            retry: Some(RetryPolicy {
                base_backoff: Duration::from_micros(100),
                ..RetryPolicy::attempts(3)
            }),
            ..TenantConfig::default()
        }),
        server.register_tenant(TenantConfig::weighted(1)),
    ];

    let runs = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(REQS);
    let mut cancels = 0u64;
    for i in 0..REQS {
        let handle = submit_counting(&tenants[i % tenants.len()], &runs);
        // A sprinkle of client cancellations races the storm.
        if i % 101 == 100 {
            handle.cancel();
            cancels += 1;
        }
        handles.push(handle);
    }
    assert!(cancels > 0);

    // Invariant 1: zero hangs — every request resolves within bound.
    let mut tally = Tally::default();
    for (i, h) in handles.iter().enumerate() {
        let outcome = h
            .wait_timeout(WAIT)
            .unwrap_or_else(|| panic!("request {i} hung past {WAIT:?}"));
        tally.add(outcome);
    }

    // Invariant 2: ledger conservation, server-side and against the
    // client's own tally. `settled()` includes `rejected_full`, which
    // counts refused *offers* (no handle, retried client-side above),
    // so the handle tally matches the buckets minus that column.
    let mut totals = Tally::default();
    let mut rejected_full = 0u64;
    let mut submitted = 0u64;
    for t in &tenants {
        let s = t.stats();
        assert_eq!(
            s.settled(),
            s.submitted,
            "every offer must land in exactly one settled bucket: {s:?}"
        );
        totals.completed += s.completed;
        totals.failed += s.failed;
        totals.cancelled += s.cancelled;
        totals.rejected += s.shed + s.closed_rejects + s.shutdown_rejects;
        rejected_full += s.rejected_full;
        submitted += s.submitted;
    }
    assert_eq!(submitted, REQS as u64 + rejected_full);
    assert_eq!(totals.completed, tally.completed);
    assert_eq!(totals.failed, tally.failed);
    assert_eq!(totals.cancelled, tally.cancelled);
    assert_eq!(totals.rejected, tally.rejected);
    assert!(
        runs.load(Ordering::Relaxed) >= tally.completed,
        "a completed request ran its body at least once"
    );

    // The storm actually stormed: faults fired, workers died, the
    // dispatcher was killed and restarted.
    let injected = pool.fault_plane().injected_total();
    assert!(injected > 0, "the fault plane never fired");
    assert!(
        server.dispatcher_restarts() >= 1,
        "the dispatcher kill rule never exercised the watchdog"
    );

    // Invariant 3: census restored. Every death respawned (no retires
    // here, so the balance is exact); a death still healing when the
    // last request resolved gets a bounded grace period.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let s = pool.stats();
        if s.worker_deaths == s.respawns || Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(
        stats.worker_deaths > 0,
        "the kill rules never killed a worker"
    );
    assert_eq!(
        stats.worker_deaths, stats.respawns,
        "every worker death must be healed by a respawn"
    );
    assert_eq!(
        pool.active_workers(),
        full_census,
        "pool back at full strength"
    );

    // The healed pool still serves: a clean tail all resolves.
    let tail: Vec<_> = (0..200)
        .map(|i| submit_counting(&tenants[i % tenants.len()], &runs))
        .collect();
    for (i, h) in tail.iter().enumerate() {
        assert!(
            h.wait_timeout(WAIT).is_some(),
            "post-storm request {i} hung — the pool did not heal"
        );
    }
    server.shutdown();
}

/// The `HTVM_FAULTS` path: a pool built with [`Pool::with_elastic`]
/// arms whatever the environment specifies (the release-mode chaos CI
/// job sets a kill-heavy spec; a plain `cargo test` runs it clean).
/// Either way every request must resolve and the ledger must conserve
/// — the suite's invariants do not depend on which faults fire.
#[test]
fn env_spec_storm_resolves_and_conserves() {
    const REQS: usize = 2_000;
    let pool = Arc::new(Pool::with_elastic(Topology::domains(2, 1), 0));
    let server = Server::on_pool(
        pool.clone(),
        ServerConfig {
            default_queue_capacity: 512,
            max_queued_total: REQS + 512,
            ..ServerConfig::default()
        },
    );
    let tenant = server.register_tenant(TenantConfig {
        weight: 1,
        retry: Some(RetryPolicy {
            base_backoff: Duration::from_micros(100),
            ..RetryPolicy::attempts(2)
        }),
        ..TenantConfig::default()
    });
    let runs = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..REQS).map(|_| submit_counting(&tenant, &runs)).collect();
    for (i, h) in handles.iter().enumerate() {
        assert!(
            h.wait_timeout(WAIT).is_some(),
            "request {i} hung past {WAIT:?}"
        );
    }
    let s = tenant.stats();
    assert_eq!(s.settled(), s.submitted, "ledger must conserve: {s:?}");
    let deadline = Instant::now() + Duration::from_secs(30);
    let stats = loop {
        let s = pool.stats();
        if s.worker_deaths == s.respawns || Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        stats.worker_deaths, stats.respawns,
        "every worker death must be healed by a respawn"
    );
    server.shutdown();
}
