//! Helpers shared by the root integration-test binaries.

/// Wall-clock speedup and steal-observation assertions need real cores to
/// be meaningful: on a single-CPU host a parallel run can never beat
/// sequential and one worker can legitimately drain a short run before any
/// peer is scheduled. Those specific claims are gated on this; correctness
/// claims are always asserted.
pub fn multicore() -> bool {
    std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
}
