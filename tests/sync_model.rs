//! Smoke tests for the dataflow-synchronization substrate (§3.2 of the
//! paper), at the workspace level: [`SyncSlot`] threshold firing, [`IVar`]
//! single-assignment with deferred readers, and [`PoolBarrier`] release.
//! Everything here is deterministic — sequencing comes from joins and the
//! primitives themselves, never from sleeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use htvm::core::{IVar, PoolBarrier, SyncSlot};

#[test]
fn sync_slot_fires_exactly_once_at_threshold() {
    let fired = Arc::new(AtomicUsize::new(0));
    let slot = SyncSlot::with_action(5, {
        let fired = fired.clone();
        move || {
            fired.fetch_add(1, Ordering::SeqCst);
        }
    });
    for expect_before in [0, 0, 0, 0] {
        assert_eq!(fired.load(Ordering::SeqCst), expect_before);
        slot.signal();
    }
    // Fifth signal crosses the threshold; exactly one firing.
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    assert!(slot.signal(), "threshold signal must report enabling");
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    // Over-signalling, single or batched, never re-fires.
    slot.signal();
    slot.signal_n(10);
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn sync_slot_batched_signals_cross_threshold_once() {
    let fired = Arc::new(AtomicUsize::new(0));
    let slot = SyncSlot::with_action(6, {
        let fired = fired.clone();
        move || {
            fired.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert!(!slot.signal_n(3));
    assert!(!slot.signal_n(2));
    assert!(slot.signal_n(4), "batch crossing the threshold enables");
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

/// Racer accounting on an already-crossed slot: a zero-count slot has no
/// pre-crossing replacement window, so of N concurrent `set_action` calls
/// exactly one may win (`true`, its action runs) and every other must be
/// counted late (`false`, one `late_actions` tick each). Historically a
/// racer preempted mid-`set_action` could be silently replaced — told
/// `true`, action dropped, no tick; the schedule explorer caught it (seed
/// `0x203cfdbad06e70dc` in `crates/check/tests/schedule_explore.rs`), and
/// this is the same invariant under real threads.
#[test]
fn sync_slot_racing_set_actions_account_exactly_once() {
    const RACERS: usize = 8;
    for _ in 0..50 {
        let slot = SyncSlot::new(0);
        let ran = Arc::new(AtomicUsize::new(0));
        let wins = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..RACERS)
            .map(|_| {
                let slot = slot.clone();
                let ran = ran.clone();
                let wins = wins.clone();
                std::thread::spawn(move || {
                    let r2 = ran.clone();
                    if slot.set_action(move || {
                        r2.fetch_add(1, Ordering::SeqCst);
                    }) {
                        wins.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1, "exactly one action runs");
        assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one winner");
        assert_eq!(
            slot.late_actions(),
            (RACERS - 1) as u64,
            "each losing racer ticks late_actions exactly once"
        );
        assert!(slot.has_fired());
    }
}

#[test]
fn ivar_wakes_deferred_readers_in_arrival_order() {
    let iv: IVar<u64> = IVar::new();
    let log = Arc::new(parking_lot_free_log::Log::default());
    for tag in 0..4u64 {
        let log = log.clone();
        iv.on_full(move |v| log.push(tag * 100 + *v));
    }
    assert_eq!(iv.deferred_readers(), 4, "readers buffered at the cell");
    assert!(!iv.is_full());
    iv.put(7);
    assert!(iv.is_full());
    assert_eq!(iv.deferred_readers(), 0, "producer drained the buffer");
    assert_eq!(log.snapshot(), vec![7, 107, 207, 307], "arrival order");
    // A reader arriving after the write runs immediately.
    let log2 = log.clone();
    iv.on_full(move |v| log2.push(999 + *v));
    assert_eq!(log.snapshot().last(), Some(&1006));
    assert_eq!(iv.try_get(), Some(7));
}

#[test]
#[should_panic(expected = "double write")]
fn ivar_rejects_double_write() {
    let iv: IVar<u32> = IVar::new();
    iv.put(1);
    iv.put(2); // single-assignment violation must panic, not overwrite
}

#[test]
fn ivar_double_write_leaves_first_value_intact() {
    let iv = Arc::new(IVar::<u32>::new());
    iv.put(41);
    let iv2 = iv.clone();
    let second = std::thread::spawn(move || iv2.put(99)).join();
    assert!(second.is_err(), "second put must panic");
    assert_eq!(iv.try_get(), Some(41), "original value survives");
}

#[test]
fn pool_barrier_releases_all_waiters() {
    let parties = 8;
    let barrier = Arc::new(PoolBarrier::new(parties));
    let released = Arc::new(AtomicUsize::new(0));
    let serials = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..parties)
        .map(|_| {
            let barrier = barrier.clone();
            let released = released.clone();
            let serials = serials.clone();
            std::thread::spawn(move || {
                if barrier.wait() {
                    serials.fetch_add(1, Ordering::SeqCst);
                }
                released.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap(); // a stuck waiter would hang the join, not race it
    }
    assert_eq!(
        released.load(Ordering::SeqCst),
        parties,
        "all waiters freed"
    );
    assert_eq!(
        serials.load(Ordering::SeqCst),
        1,
        "exactly one serial party"
    );
}

/// Tiny append-only log used to observe continuation order without pulling
/// a locking dependency into the test.
mod parking_lot_free_log {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Log(Mutex<Vec<u64>>);

    impl Log {
        pub fn push(&self, v: u64) {
            self.0.lock().unwrap().push(v);
        }

        pub fn snapshot(&self) -> Vec<u64> {
            self.0.lock().unwrap().clone()
        }
    }
}
