//! Cross-crate integration: the full thread hierarchy with LITL-X
//! constructs on the native runtime, and the hierarchy on the simulated
//! machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use htvm::core::{Htvm, HtvmConfig};
use htvm::litlx::atomic::AtomicDomain;
use htvm::litlx::dataflow::FeRegion;
use htvm::litlx::future::future_on;

mod common;

#[test]
fn three_level_hierarchy_composes() {
    let htvm = Htvm::new(HtvmConfig::with_workers(4));
    let total = Arc::new(AtomicU64::new(0));
    // 2 LGTs × 8 SGTs × TGT graph of 4 fibers, each fiber contributes 1.
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let total = total.clone();
            htvm.lgt(move |lgt| {
                for _ in 0..8 {
                    let total = total.clone();
                    lgt.spawn_sgt(move |sgt| {
                        let mut g = sgt.tgt_graph(4);
                        let a = g.fiber(|c| c.frame.set(0, 1));
                        let b = g.fiber(|c| c.frame.set(1, 1));
                        let d = g.fiber(|c| c.frame.set(2, 1));
                        let j = g.fiber(|c| {
                            c.frame
                                .set(3, c.frame.get(0) + c.frame.get(1) + c.frame.get(2) + 1)
                        });
                        g.depends(j, a);
                        g.depends(j, b);
                        g.depends(j, d);
                        let frame = g.run();
                        total.fetch_add(frame.get(3), Ordering::Relaxed);
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(total.load(Ordering::Relaxed), 2 * 8 * 4);
}

#[test]
fn futures_and_atomics_inside_lgt() {
    let htvm = Htvm::new(HtvmConfig::with_workers(4));
    let dom = Arc::new(AtomicDomain::new(htvm_core::SharedRegion::new(4), 2));
    let h = htvm.lgt({
        let dom = dom.clone();
        move |lgt| {
            dom.region().write(0, 500);
            let f = future_on(lgt, |_| 42u64);
            for _ in 0..100 {
                let dom = dom.clone();
                lgt.spawn_sgt(move |_| {
                    dom.transfer(0, 1, 5);
                });
            }
            let dom2 = dom.clone();
            f.and_then(move |v| {
                dom2.region().write(2, *v);
            });
        }
    });
    h.join();
    assert_eq!(dom.region().read(0) + dom.region().read(1), 500);
    assert_eq!(dom.region().read(2), 42);
}

#[test]
fn fe_region_synchronizes_producer_consumer_sgts() {
    let htvm = Htvm::new(HtvmConfig::with_workers(4));
    let fe = Arc::new(FeRegion::new(16));
    let got = Arc::new(AtomicU64::new(0));
    let h = htvm.lgt({
        let fe = fe.clone();
        let got = got.clone();
        move |lgt| {
            // Consumers first (deferred reads park at the words).
            for i in 0..16usize {
                let fe = fe.clone();
                let got = got.clone();
                lgt.spawn_sgt(move |_| {
                    let got = got.clone();
                    fe.read_when_full(i, move |v| {
                        got.fetch_add(v, Ordering::Relaxed);
                    });
                });
            }
            // Producers fill.
            for i in 0..16usize {
                let fe = fe.clone();
                lgt.spawn_sgt(move |_| {
                    fe.write_full(i, i as u64 + 1);
                });
            }
        }
    });
    h.join();
    assert_eq!(got.load(Ordering::Relaxed), (1..=16).sum::<u64>());
}

#[test]
fn simulated_hierarchy_runs_to_completion() {
    use htvm::core::simrt::run_lgt_fanout;
    use htvm::sim::{compute_task, Engine, MachineConfig, SimThread};

    let mut e = Engine::new(MachineConfig::c64());
    let kernels: Vec<Box<dyn SimThread>> = (0..160)
        .map(|_| Box::new(compute_task(5_000)) as Box<dyn SimThread>)
        .collect();
    let stats = run_lgt_fanout(&mut e, 0, kernels);
    assert_eq!(stats.tasks_completed, 161);
    // 160 equal kernels on 160 units: near-perfect overlap means makespan
    // far below the serial sum.
    assert!(
        stats.now < 5_000 * 40,
        "makespan {} suggests no parallelism",
        stats.now
    );
}

#[test]
fn work_stealing_is_migration() {
    // The paper's "dynamic load adaptation": skewed spawning must migrate
    // via steals on the native pool.
    let htvm = Htvm::new(HtvmConfig::with_workers(4));
    let h = htvm.lgt(|lgt| {
        for _ in 0..200 {
            lgt.spawn_sgt(|_| {
                std::hint::black_box(htvm_apps::workloads::spin_work(20_000));
            });
        }
    });
    h.join();
    let multicore = common::multicore();
    let stats = htvm.pool_stats();
    assert!(
        stats.total_stolen() > 0 || !multicore,
        "no migration happened"
    );
    assert!(
        stats.imbalance() < 1.5 || !multicore,
        "imbalance {} too high with stealing on",
        stats.imbalance()
    );
}
